//! Alert mode vs. prompt mode — the §IV-A policy trade-off.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin prompt_mode
//! ```
//!
//! The paper argues that popup prompts "have severe usability issues that
//! conflict with their security properties" (citing Motiee et al.'s UAC
//! study) and ships passive alerts instead — while noting the same trusted
//! paths support an unforgeable prompt trivially. This harness runs the
//! §V-B Skype-call task under both policies and compares friction
//! (prompts per session, Likert scores) and protection (background probes
//! blocked either way).

use overhaul_core::{AttentionProfile, SimulatedUser, System};
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;

struct ModeReport {
    prompts_per_session: f64,
    mean_likert: f64,
    probes_blocked: u32,
    calls_succeeded: u32,
}

fn run_mode(prompt_mode: bool, participants: u32) -> ModeReport {
    let mut total_prompts = 0usize;
    let mut likert_sum = 0u32;
    let mut probes_blocked = 0u32;
    let mut calls_succeeded = 0u32;
    for participant in 0..participants {
        let mut user = SimulatedUser::new(
            AttentionProfile::paper_calibrated(),
            500 + participant as u64,
        );
        let mut machine = System::protected();
        let skype = machine
            .launch_gui_app("/usr/bin/skype", Rect::new(0, 0, 640, 480))
            .expect("launch skype");
        machine.settle();
        machine.click_window(skype.window);
        machine.advance(SimDuration::from_millis(2500)); // slow codec init: past δ!
        let (cam, mic) = if prompt_mode {
            (
                machine.open_device_prompted(skype.pid, "/dev/video0", true),
                machine.open_device_prompted(skype.pid, "/dev/snd/mic0", true),
            )
        } else {
            // Alert mode has no recourse beyond δ: the user clicks again
            // (as a real user would when the call button appears stuck).
            machine.click_window(skype.window);
            machine.advance(SimDuration::from_millis(100));
            (
                machine.open_device(skype.pid, "/dev/video0"),
                machine.open_device(skype.pid, "/dev/snd/mic0"),
            )
        };
        if cam.is_ok() && mic.is_ok() {
            calls_succeeded += 1;
        }
        let prompts = machine.xserver().prompts().asked_count();
        total_prompts += prompts;
        likert_sum += u32::from(user.rate_task_difficulty(false, prompts));

        // A background probe must be blocked in both modes (in prompt mode
        // the user recognizes the unexpected request and denies it).
        let spy = machine.spawn_process(None, "/usr/bin/.probe").unwrap();
        let blocked = if prompt_mode {
            machine
                .open_device_prompted(spy, "/dev/video0", false)
                .is_err()
        } else {
            machine.open_device(spy, "/dev/video0").is_err()
        };
        if blocked {
            probes_blocked += 1;
        }
    }
    ModeReport {
        prompts_per_session: total_prompts as f64 / participants as f64,
        mean_likert: likert_sum as f64 / participants as f64,
        probes_blocked,
        calls_succeeded,
    }
}

fn main() {
    let participants = 46;
    println!("alert mode vs prompt mode — {participants} participants, slow-app scenario\n");
    println!(
        "{:<14} {:>18} {:>14} {:>16} {:>16}",
        "mode", "prompts/session", "mean Likert", "calls ok", "probes blocked"
    );
    for (label, prompt_mode) in [("alerts (paper)", false), ("prompts", true)] {
        let r = run_mode(prompt_mode, participants);
        println!(
            "{label:<14} {:>18.2} {:>14.2} {:>13}/{participants} {:>13}/{participants}",
            r.prompts_per_session, r.mean_likert, r.calls_succeeded, r.probes_blocked
        );
    }
    println!(
        "\nboth modes block the hidden probe; prompts add interruptions (higher\n\
         Likert = more friction), which is why the paper ships passive alerts."
    );
}
