//! Shared-memory wait-window ablation: fault cost vs. missed propagation.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin ablation_shm_wait
//! ```
//!
//! The paper: the window "must be sufficiently shorter than the 2 second
//! interaction expiration time"; 500 ms "yielded a good
//! performance-usability trade-off".

use overhaul_bench::ablation::sweep_shm_wait;

fn main() {
    println!("shm wait-window ablation — interposition cost vs propagation fidelity\n");
    println!(
        "{:>9} {:>16} {:>24}",
        "wait", "faults /10k wr", "missed propagation"
    );
    for point in sweep_shm_wait(&[0, 50, 100, 250, 500, 1000, 2000], 60, 42) {
        println!(
            "{:>7}ms {:>16.1} {:>23.1}%",
            point.wait_ms,
            point.faults_per_10k,
            point.missed_propagation_rate * 100.0
        );
    }
    println!("\npaper's choice: 500 ms");
}
