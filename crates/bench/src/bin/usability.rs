//! Regenerates the §V-B usability study with simulated participants.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin usability [participants]
//! ```

use overhaul_bench::usability::{format_report, run_study, StudyConfig};

fn main() {
    let participants = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(46);
    let config = StudyConfig {
        participants,
        ..StudyConfig::default()
    };
    println!(
        "§V-B usability study reproduction — {participants} simulated participants\n\
         (attention model calibrated to the paper's observed 24/16/6 split)\n"
    );
    let report = run_study(config);
    println!("{}", format_report(&report));
}
