//! Clickjacking visibility-threshold ablation.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin ablation_visibility
//! ```
//!
//! Higher thresholds defeat popup/overlay clickjacking but suppress more
//! legitimate first-clicks on freshly mapped windows.

use overhaul_bench::ablation::sweep_visibility;

fn main() {
    println!("visibility-threshold ablation — legit suppression vs popup defense\n");
    println!(
        "{:>11} {:>20} {:>18}",
        "threshold", "legit suppressed", "popup attack"
    );
    for point in sweep_visibility(&[0, 100, 250, 500, 1000, 2000], 120, 42) {
        println!(
            "{:>9}ms {:>19.1}% {:>18}",
            point.threshold_ms,
            point.legit_suppression_rate * 100.0,
            if point.popup_attack_succeeds {
                "SUCCEEDS"
            } else {
                "blocked"
            }
        );
    }
}
