//! Diffs a fresh `BENCH_*.json` artifact against a committed baseline.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> <key>[:lower|:higher][:threshold_pct] ...
//! ```
//!
//! Each checked key names one numeric field present in both files. The
//! direction says which way "better" points: `lower` (the default, for
//! per-op nanoseconds) or `higher` (for speedup ratios). A key regresses
//! when it moves in the *worse* direction by more than the threshold
//! (default 20%), in which case the tool prints the offending key and
//! exits non-zero — that is the CI gate on the cached decide path.
//!
//! The parser is hand-rolled for the flat artifact format
//! ([`overhaul_sim::BenchArtifact`]): one JSON object, string keys,
//! scalar values. It is not a general JSON parser and does not try to be.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default allowed regression before the diff fails, in percent.
const DEFAULT_THRESHOLD_PCT: f64 = 20.0;

/// Which direction counts as an improvement for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Better {
    /// Smaller numbers are better (latencies, sizes).
    Lower,
    /// Larger numbers are better (ratios, throughputs).
    Higher,
}

/// One `key[:direction][:threshold]` check from the command line.
#[derive(Debug, Clone, PartialEq)]
struct Check {
    key: String,
    better: Better,
    threshold_pct: f64,
}

fn parse_check(spec: &str) -> Result<Check, String> {
    let mut parts = spec.split(':');
    let key = parts
        .next()
        .filter(|k| !k.is_empty())
        .ok_or_else(|| format!("empty key in check spec {spec:?}"))?
        .to_string();
    let mut better = Better::Lower;
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    for part in parts {
        match part {
            "lower" => better = Better::Lower,
            "higher" => better = Better::Higher,
            other => {
                threshold_pct = other
                    .parse::<f64>()
                    .map_err(|_| format!("bad check component {other:?} in {spec:?}"))?;
            }
        }
    }
    Ok(Check {
        key,
        better,
        threshold_pct,
    })
}

/// Parses the flat one-object artifact format into key → numeric value.
/// Non-numeric fields (`mode`, `name`, `null`) are skipped; structural
/// damage is an error.
fn parse_flat_json(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let body = text.trim();
    let inner = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("artifact is not a single JSON object")?;
    let mut rest = inner;
    while !rest.trim().is_empty() {
        let open = rest.find('"').ok_or("expected a quoted key")?;
        let after_open = &rest[open + 1..];
        let close = scan_string_end(after_open)?;
        let key = unescape(&after_open[..close]);
        let after_key = after_open[close + 1..].trim_start();
        let after_colon = after_key
            .strip_prefix(':')
            .ok_or_else(|| format!("missing ':' after key {key:?}"))?
            .trim_start();
        let (value_text, remainder) = scan_value(after_colon)?;
        if let Ok(v) = value_text.parse::<f64>() {
            out.insert(key, v);
        }
        rest = remainder
            .trim_start()
            .strip_prefix(',')
            .unwrap_or(remainder.trim_start());
    }
    Ok(out)
}

/// Index of the closing quote of a string whose opening quote has been
/// consumed, honoring backslash escapes.
fn scan_string_end(s: &str) -> Result<usize, String> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            '"' => return Ok(i),
            _ => {}
        }
    }
    Err("unterminated string".to_string())
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Splits one scalar value (quoted string, number, or bare word) off the
/// front of `s`, returning `(value_text, remainder)`. Quoted strings come
/// back with their quotes stripped so they never parse as numbers.
fn scan_value(s: &str) -> Result<(&str, &str), String> {
    if let Some(body) = s.strip_prefix('"') {
        let end = scan_string_end(body)?;
        return Ok(("", &body[end + 1..]));
    }
    let end = s
        .find([',', '}'])
        .unwrap_or(s.len())
        .min(s.find(char::is_whitespace).unwrap_or(s.len()));
    if end == 0 {
        return Err(format!("expected a value at {s:?}"));
    }
    Ok((&s[..end], &s[end..]))
}

/// Signed regression percentage: positive means `current` is worse than
/// `baseline` by that much.
fn regression_pct(check: &Check, baseline: f64, current: f64) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    let delta = match check.better {
        Better::Lower => current - baseline,
        Better::Higher => baseline - current,
    };
    delta / baseline.abs() * 100.0
}

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_flat_json(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn run(args: &[String]) -> Result<bool, String> {
    let [baseline_path, current_path, checks @ ..] = args else {
        return Err("usage: bench_diff <baseline.json> <current.json> \
             <key>[:lower|:higher][:threshold_pct] ..."
            .to_string());
    };
    if checks.is_empty() {
        return Err("no keys to check".to_string());
    }
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let mut failed = false;
    for spec in checks {
        let check = parse_check(spec)?;
        let base = *baseline
            .get(&check.key)
            .ok_or_else(|| format!("baseline {baseline_path} has no key {:?}", check.key))?;
        let cur = *current
            .get(&check.key)
            .ok_or_else(|| format!("current {current_path} has no key {:?}", check.key))?;
        let pct = regression_pct(&check, base, cur);
        let verdict = if pct > check.threshold_pct {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "{:<28} baseline {:>12.3}  current {:>12.3}  change {:>+7.1}%  (budget {:.0}%)  {}",
            check.key, base, cur, pct, check.threshold_pct, verdict
        );
    }
    Ok(failed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => {
            eprintln!("bench_diff: regression over budget");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_artifacts() {
        let parsed = parse_flat_json(
            "{\"name\":\"decision_path\",\"mode\":\"quick\",\
             \"tasks\":1024,\"traced_hit_ns\":82.5,\"bad\":null}",
        )
        .expect("parse");
        assert_eq!(parsed.get("tasks"), Some(&1024.0));
        assert_eq!(parsed.get("traced_hit_ns"), Some(&82.5));
        assert!(!parsed.contains_key("mode"));
        assert!(!parsed.contains_key("bad"));
    }

    #[test]
    fn rejects_structural_damage() {
        assert!(parse_flat_json("not json").is_err());
        assert!(parse_flat_json("{\"unterminated).is_err()").is_err());
        assert!(parse_flat_json("{\"k\" 1}").is_err());
    }

    #[test]
    fn check_specs_parse() {
        assert_eq!(
            parse_check("traced_hit_ns").unwrap(),
            Check {
                key: "traced_hit_ns".into(),
                better: Better::Lower,
                threshold_pct: DEFAULT_THRESHOLD_PCT,
            }
        );
        assert_eq!(
            parse_check("wire_vs_hit_ratio:higher:35").unwrap(),
            Check {
                key: "wire_vs_hit_ratio".into(),
                better: Better::Higher,
                threshold_pct: 35.0,
            }
        );
        assert!(parse_check(":lower").is_err());
        assert!(parse_check("k:sideways").is_err());
    }

    #[test]
    fn regression_direction_is_honored() {
        let lower = parse_check("ns:lower:20").unwrap();
        assert!(regression_pct(&lower, 100.0, 130.0) > 20.0);
        assert!(regression_pct(&lower, 100.0, 110.0) < 20.0);
        // Improvements are negative, never a failure.
        assert!(regression_pct(&lower, 100.0, 50.0) < 0.0);

        let higher = parse_check("ratio:higher:20").unwrap();
        assert!(regression_pct(&higher, 10.0, 7.0) > 20.0);
        assert!(regression_pct(&higher, 10.0, 9.5) < 20.0);
        assert!(regression_pct(&higher, 10.0, 20.0) < 0.0);
    }

    #[test]
    fn end_to_end_diff_flags_only_over_budget_keys() {
        let dir = std::env::temp_dir().join(format!("overhaul-bench-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(&base, "{\"name\":\"d\",\"hit_ns\":100,\"ratio\":10}\n").unwrap();
        std::fs::write(&cur, "{\"name\":\"d\",\"hit_ns\":115,\"ratio\":9}\n").unwrap();
        let args: Vec<String> = [
            base.to_str().unwrap(),
            cur.to_str().unwrap(),
            "hit_ns:lower:20",
            "ratio:higher:20",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert_eq!(run(&args), Ok(false));

        std::fs::write(&cur, "{\"name\":\"d\",\"hit_ns\":140,\"ratio\":9}\n").unwrap();
        assert_eq!(run(&args), Ok(true));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A CI operator staring at a red gate must see *which file* is
    /// missing *which key* — both sides, by name.
    #[test]
    fn missing_key_errors_name_artifact_and_key() {
        let dir = std::env::temp_dir().join(format!("overhaul-bd-misskey-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let cur = dir.join("cur.json");
        std::fs::write(&base, "{\"name\":\"d\",\"hit_ns\":100}\n").unwrap();
        std::fs::write(
            &cur,
            "{\"name\":\"d\",\"hit_ns\":101,\"decide_p99_ns\":9}\n",
        )
        .unwrap();
        let args = |key: &str| -> Vec<String> {
            [base.to_str().unwrap(), cur.to_str().unwrap(), key]
                .iter()
                .map(|s| s.to_string())
                .collect()
        };

        let err = run(&args("decide_p99_ns:lower:50")).expect_err("baseline lacks the key");
        assert!(err.contains("baseline"), "side named: {err}");
        assert!(
            err.contains(base.to_str().unwrap()),
            "artifact named: {err}"
        );
        assert!(err.contains("decide_p99_ns"), "key named: {err}");

        std::fs::write(&base, "{\"name\":\"d\",\"hit_ns\":100,\"only_here\":1}\n").unwrap();
        let err = run(&args("only_here")).expect_err("current lacks the key");
        assert!(err.contains("current"), "side named: {err}");
        assert!(err.contains(cur.to_str().unwrap()), "artifact named: {err}");
        assert!(err.contains("only_here"), "key named: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Unreadable or structurally-damaged artifacts fail with the path in
    /// the message, never a bare parser error.
    #[test]
    fn read_and_parse_failures_name_the_artifact() {
        let dir = std::env::temp_dir().join(format!("overhaul-bd-badfile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        let bad = dir.join("bad.json");
        let missing = dir.join("nonexistent.json");
        std::fs::write(&good, "{\"hit_ns\":100}\n").unwrap();
        std::fs::write(&bad, "this is not an artifact\n").unwrap();
        let args = |a: &std::path::Path, b: &std::path::Path| -> Vec<String> {
            [a.to_str().unwrap(), b.to_str().unwrap(), "hit_ns"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        };

        let err = run(&args(&bad, &good)).expect_err("corrupt baseline");
        assert!(err.starts_with("parse "), "parse failure labeled: {err}");
        assert!(err.contains(bad.to_str().unwrap()), "artifact named: {err}");

        let err = run(&args(&good, &bad)).expect_err("corrupt current");
        assert!(err.starts_with("parse "), "parse failure labeled: {err}");
        assert!(err.contains(bad.to_str().unwrap()), "artifact named: {err}");

        let err = run(&args(&missing, &good)).expect_err("missing baseline");
        assert!(err.starts_with("read "), "read failure labeled: {err}");
        assert!(
            err.contains(missing.to_str().unwrap()),
            "artifact named: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
