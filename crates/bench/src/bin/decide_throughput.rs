//! Decision-throughput benchmark: how many permission decisions per
//! second the kernel sustains when driven through the batched ingestion
//! API, plus the batched pure-engine ceiling.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin decide_throughput [-- --quick]
//! ```
//!
//! Rows:
//!
//! - `ingest_batch` — [`Kernel::ingest_batch`] fed a mixed stream of
//!   interaction notifications and permission requests (mostly cache
//!   hits). Every decision pays full mediation fidelity: monitor
//!   counters, the hash-chained ledger append, and `explain_last`.
//! - `engine batch` — pure [`PolicyEngine::decide`] over a prebuilt
//!   snapshot, the `decide_batch` regime with every state read amortized
//!   away: the throughput ceiling of the decision core itself.
//!
//! `--quick` runs a reduced iteration count and asserts conservative
//! floors (full-fidelity ingestion in the millions of decisions/sec, the
//! engine regime in the tens of millions), panicking on regression. CI
//! runs this mode and diffs the artifact against the committed baseline.

use std::hint::black_box;
use std::time::Instant;

use overhaul_kernel::monitor::ResourceOp;
use overhaul_kernel::policy::{IngestEvent, OpRequest, PolicyEngine};
use overhaul_kernel::{Kernel, KernelConfig, XORG_PATH};
use overhaul_sim::{Clock, Pid, Timestamp};

/// Processes in the benchmark kernel (mixed spawns and fork chains).
const TASKS: usize = 1024;

/// Events per ingested batch.
const BATCH: usize = 4096;

/// One interaction notification per this many requests (each one bumps
/// its task's interaction epoch, so the pid's next request is a miss —
/// the realistic mostly-hot regime rather than a pure hit loop).
const INTERACTION_EVERY: usize = 64;

/// A booted kernel with an authenticated display channel and `TASKS`
/// processes, each holding a fresh interaction so requests are within-δ
/// grants.
fn fixture() -> (Kernel, Vec<Pid>, Timestamp) {
    let clock = Clock::new();
    let mut kernel = Kernel::new(clock, KernelConfig::default());
    let x = kernel
        .sys_spawn(Pid::INIT, XORG_PATH)
        .expect("spawn display manager");
    kernel.netlink_connect(x).expect("authenticate channel");
    kernel.set_channel_required(true);
    let mut pids = Vec::with_capacity(TASKS);
    for i in 0..TASKS {
        let pid = match pids.last() {
            Some(&prev) if i % 8 != 0 => kernel.sys_fork(prev).expect("fork"),
            _ => kernel
                .sys_spawn(Pid::INIT, &format!("/usr/bin/app{i}"))
                .expect("spawn"),
        };
        pids.push(pid);
    }
    let t = Timestamp::from_millis(1_000);
    for &pid in &pids {
        kernel
            .record_interaction_direct(pid, t)
            .expect("record interaction");
    }
    (kernel, pids, Timestamp::from_millis(1_500))
}

/// One batch of `BATCH` events over rotating pids: requests with a sparse
/// sprinkling of interaction notifications.
fn build_batch(pids: &[Pid], at: Timestamp, round: usize) -> Vec<IngestEvent> {
    let mut events = Vec::with_capacity(BATCH);
    for i in 0..BATCH {
        let pid = pids[(round * BATCH + i) % pids.len()];
        if i % INTERACTION_EVERY == INTERACTION_EVERY - 1 {
            events.push(IngestEvent::Interaction { pid, at });
        } else {
            events.push(IngestEvent::Request(OpRequest {
                pid,
                op: ResourceOp::Mic,
                at,
            }));
        }
    }
    events
}

/// Decisions per second through [`Kernel::ingest_batch`] (full mediation
/// fidelity). Returns the best round.
fn bench_ingest(kernel: &mut Kernel, pids: &[Pid], at: Timestamp, batches: usize) -> f64 {
    // Pre-build the batches so the measured loop is ingestion only.
    let prebuilt: Vec<Vec<IngestEvent>> = (0..batches).map(|r| build_batch(pids, at, r)).collect();
    let requests_per_batch = prebuilt[0]
        .iter()
        .filter(|e| matches!(e, IngestEvent::Request(_)))
        .count();
    // Warm the verdict cache.
    black_box(kernel.ingest_batch(&prebuilt[0]));
    let start = Instant::now();
    for batch in &prebuilt {
        black_box(kernel.ingest_batch(batch));
    }
    let secs = start.elapsed().as_secs_f64();
    (batches * requests_per_batch) as f64 / secs
}

/// Decisions per second of the pure engine over one prebuilt snapshot
/// (the `decide_batch` regime's per-decision core).
fn bench_engine(kernel: &mut Kernel, pids: &[Pid], at: Timestamp, iters: u64) -> f64 {
    let pid = pids[0];
    let snapshot = kernel.policy_snapshot(pid, false);
    let request = OpRequest {
        pid,
        op: ResourceOp::Mic,
        at,
    };
    let start = Instant::now();
    for _ in 0..iters {
        black_box(PolicyEngine::decide(black_box(&snapshot), &request));
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

fn best(rounds: u32, mut run: impl FnMut() -> f64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..rounds {
        best = best.max(run());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (batches, engine_iters) = if quick {
        (64, 2_000_000)
    } else {
        (512, 20_000_000)
    };
    let mode = if quick { "quick" } else { "full" };
    println!(
        "decision-throughput benchmark ({mode}, best of 3, {TASKS} tasks, \
         batches of {BATCH}, 1 interaction per {INTERACTION_EVERY} events)\n"
    );

    let (mut kernel, pids, at) = fixture();
    let ingest = best(3, || bench_ingest(&mut kernel, &pids, at, batches));
    let engine = best(3, || bench_engine(&mut kernel, &pids, at, engine_iters));

    println!("{:>14} {:>16} {:>12}", "path", "decisions/s", "ns/decision");
    for (label, per_sec) in [("ingest_batch", ingest), ("engine batch", engine)] {
        println!(
            "{:>14} {:>15.2}M {:>11.1}ns",
            label,
            per_sec / 1e6,
            1e9 / per_sec
        );
    }

    let artifact = overhaul_sim::BenchArtifact::new("decide_throughput")
        .text("mode", mode)
        .int("tasks", TASKS as u64)
        .int("batch_len", BATCH as u64)
        .num("ingest_decisions_per_sec", ingest)
        .num("ingest_ns_per_decision", 1e9 / ingest)
        .num("engine_decisions_per_sec", engine);
    match artifact.write() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nwarning: could not write bench artifact: {e}"),
    }

    if quick {
        assert!(
            ingest >= 2_000_000.0,
            "regression: full-fidelity batched ingestion at {:.2}M decisions/s (floor: 2M)",
            ingest / 1e6
        );
        assert!(
            engine >= 20_000_000.0,
            "regression: batched engine at {:.2}M decisions/s (floor: 20M)",
            engine / 1e6
        );
        println!("OK: batched ingestion sustains >= 2M full-fidelity decisions/sec");
        println!("OK: batched engine evaluation sustains >= 20M decisions/sec");
    }
}
