//! Regenerates the §V-D 21-day empirical experiment.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin empirical [days]
//! ```
//!
//! Runs the same interactive workload + spyware on a protected and an
//! unprotected machine and prints the side-by-side outcome.

use overhaul_apps::workload::{run_empirical_experiment, EmpiricalReport, WorkloadConfig};
use overhaul_core::System;

fn print_report(label: &str, report: &EmpiricalReport) {
    println!("{label}:");
    println!("  days simulated            {}", report.days);
    println!("  spyware sampling cycles   {}", report.spy_cycles);
    println!("  items stolen              {}", report.items_stolen);
    println!("  distinct clipboard loot   {}", {
        let mut loot = report.clipboard_stolen.clone();
        loot.sort();
        loot.dedup();
        loot.len()
    });
    println!("  legit accesses granted    {}", report.legit_granted);
    println!(
        "  legit accesses denied     {}  (false positives)",
        report.legit_denied
    );
    if !report.clipboard_stolen.is_empty() {
        let mut loot = report.clipboard_stolen.clone();
        loot.sort();
        loot.dedup();
        for item in loot.iter().take(5) {
            println!("    stolen clipboard sample: {item:?}");
        }
    }
    println!();
}

fn main() {
    let days = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(21);
    let config = WorkloadConfig {
        days,
        ..WorkloadConfig::default()
    };
    println!(
        "§V-D empirical experiment reproduction — {days} simulated days\n\
         (paper: 21 days on two personal machines; spyware samples clipboard,\n\
         screen, and microphone every {}s of active use)\n",
        config.spy_interval.as_secs()
    );

    let mut protected = System::protected();
    let protected_report = run_empirical_experiment(&mut protected, config);
    print_report("OVERHAUL-protected machine", &protected_report);

    let mut baseline = System::baseline();
    let baseline_report = run_empirical_experiment(&mut baseline, config);
    print_report("Unprotected machine", &baseline_report);

    println!(
        "paper: protected machine leaked nothing with zero false positives over\n\
         21 days; the unprotected machine leaked passwords, phone numbers, email\n\
         excerpts, screenshots of e-banking, and microphone recordings."
    );
}
