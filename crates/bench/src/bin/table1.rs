//! Regenerates Table I (performance overhead of Overhaul).
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin table1 [--quick]
//! ```
//!
//! Measures each micro-benchmark on an unmodified baseline stack and on
//! the grant-all Overhaul stack, printing measured overheads next to the
//! paper's. Absolute times are simulator times, not the authors' testbed;
//! the comparison target is the overhead column.
//!
//! Besides the human-readable table, the run emits `BENCH_table1.json`
//! (one flat object: per-row measured overhead in percent plus the
//! paper's figure) so CI can diff the perf trajectory against the
//! committed baseline with `bench_diff`.

use overhaul_bench::table1::{format_table, run_all, Scale};
use overhaul_sim::BenchArtifact;

/// `"Device Access"` → `"device_access"` for artifact keys.
fn key_of(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'A'..='Z' => c.to_ascii_lowercase(),
            ' ' => '_',
            '+' => 'p',
            c => c,
        })
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let mode = if quick { "quick" } else { "full" };
    println!(
        "Table I reproduction — {mode} workload\n(paper: Intel i7-930 testbed; here: simulated stack, compare overhead %)\n",
    );
    let rows = run_all(scale);
    println!("{}", format_table(&rows));

    let mut artifact = BenchArtifact::new("table1").text("mode", mode);
    for row in &rows {
        let key = key_of(row.name);
        artifact = artifact
            .int(&format!("{key}_ops"), row.ops)
            .num(&format!("{key}_overhead_pct"), row.overhead_pct())
            .num(&format!("{key}_paper_pct"), row.paper_overhead_pct);
    }
    match artifact.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench artifact: {e}"),
    }
}
