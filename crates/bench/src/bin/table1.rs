//! Regenerates Table I (performance overhead of Overhaul).
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin table1 [--quick]
//! ```
//!
//! Measures each micro-benchmark on an unmodified baseline stack and on
//! the grant-all Overhaul stack, printing measured overheads next to the
//! paper's. Absolute times are simulator times, not the authors' testbed;
//! the comparison target is the overhead column.

use overhaul_bench::table1::{format_table, run_all, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::full() };
    println!(
        "Table I reproduction — {} workload\n(paper: Intel i7-930 testbed; here: simulated stack, compare overhead %)\n",
        if quick { "quick" } else { "full" }
    );
    let rows = run_all(scale);
    println!("{}", format_table(&rows));
}
