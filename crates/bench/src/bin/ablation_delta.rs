//! δ-threshold ablation: false denials vs. residual exposure.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin ablation_delta
//! ```
//!
//! The paper: "setting a threshold of less than 1 second could lead to
//! falsely revoked permissions, but 2 seconds is sufficient".

use overhaul_bench::ablation::sweep_delta;

fn main() {
    println!("δ ablation — false-deny rate (human-like app reaction delays) vs exposure\n");
    println!(
        "{:>9} {:>16} {:>20}",
        "delta", "false-deny rate", "exposure fraction"
    );
    for point in sweep_delta(&[250, 500, 1000, 2000, 3000, 5000], 200, 42) {
        println!(
            "{:>7}ms {:>15.1}% {:>19.1}%",
            point.delta_ms,
            point.false_deny_rate * 100.0,
            point.exposure_fraction * 100.0
        );
    }
    println!("\npaper's choice: δ = 2000 ms (first row with ~0% false denials)");
}
