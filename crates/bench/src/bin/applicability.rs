//! Regenerates the §V-C applicability & false-positive assessment.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin applicability
//! ```
//!
//! Drives the 58-app device/screen corpus and the 50-app clipboard corpus
//! on protected machines, then re-runs the device corpus on a baseline
//! machine to show the protection gap.

use overhaul_apps::corpus::device_corpus;
use overhaul_bench::applicability::{format_report, run_corpus, run_study};
use overhaul_core::System;

fn main() {
    println!("§V-C applicability study reproduction\n");
    let (devices, clipboard) = run_study();
    println!("{}", format_report(&devices));
    println!("{}", format_report(&clipboard));
    println!(
        "paper: 58 apps functional, 1 spurious alert (Skype autostart probe),\n\
         delayed-screenshot timers unsupported by design, 0 clipboard FPs\n"
    );

    let (baseline, _) = run_corpus(
        "device/screen (baseline)",
        &device_corpus(),
        System::baseline,
    );
    println!("{}", format_report(&baseline));
    println!("(on stock Linux the launch-time probes succeed: protection failures above)");
}
