//! Prints the attack × machine-configuration matrix.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin attack_matrix
//! ```
//!
//! Every attack from the threat model runs against the paper's protected
//! configuration, the §III kernel-integrated variant, and a stock
//! baseline. The asymmetry — all blocked on the first two, all open on
//! the third — is the security result in one table.

use overhaul_bench::attacks::{format_matrix, run_matrix};

fn main() {
    println!("attack matrix — protected / integrated-DM / stock baseline\n");
    let cells = run_matrix();
    println!("{}", format_matrix(&cells));
}
