//! Prints the attack × machine-configuration matrix and the multi-stage
//! campaign defense matrix, then emits `BENCH_attack_matrix.json`.
//!
//! ```text
//! cargo run --release -p overhaul-bench --bin attack_matrix
//! ```
//!
//! Part one: every single-shot attack from the threat model runs against
//! the paper's protected configuration, the §III kernel-integrated
//! variant, and a stock baseline. The asymmetry — all blocked on the
//! first two, all open on the third — is the security result in one
//! table.
//!
//! Part two: the campaign catalog (hover/overlay theft, delegation
//! abuse, operation-binding confusion) runs on the protected machine
//! under the strict judge, aggregating attack class × mechanism outcome
//! counts plus per-class block rates. Documented `ExpectedBypass` stages
//! print with their rationale: those rows pin where the input-driven
//! model is genuinely insufficient, and CI diffs the per-class block
//! rates against the committed baseline so a silent drop fails the gate.
//! Exits non-zero on any defense regression.

use overhaul_apps::campaign::AttackClass;
use overhaul_bench::attacks::{
    attack_names, format_bypass_rationales, format_matrix, run_campaign_matrix, run_matrix,
    MachineKind,
};
use overhaul_core::OverhaulConfig;
use overhaul_sim::BenchArtifact;

fn main() {
    println!("attack matrix — protected / integrated-DM / stock baseline\n");
    let cells = run_matrix();
    println!("{}", format_matrix(&cells));

    println!("campaign defense matrix — protected machine, strict judge\n");
    let (matrix, reports) = run_campaign_matrix(&OverhaulConfig::protected());
    println!("{}", matrix.render());
    println!("{}", format_bypass_rationales(&reports));

    let legacy_blocked = |kind: MachineKind| {
        cells
            .iter()
            .filter(|c| c.machine == kind && !c.succeeded)
            .count() as u64
    };
    let stages_total: usize = reports.iter().map(|r| r.stages.len()).sum();
    let stages_judged = reports
        .iter()
        .flat_map(|r| r.stages.iter())
        .filter(|s| s.check.is_some())
        .count();

    let mut artifact = BenchArtifact::new("attack_matrix")
        .int("legacy_attacks", attack_names().len() as u64)
        .int(
            "legacy_blocked_protected",
            legacy_blocked(MachineKind::Protected),
        )
        .int(
            "legacy_blocked_integrated",
            legacy_blocked(MachineKind::Integrated),
        )
        .int(
            "legacy_blocked_baseline",
            legacy_blocked(MachineKind::Baseline),
        )
        .int("campaigns", reports.len() as u64)
        .int("stages_total", stages_total as u64)
        .int("stages_judged", stages_judged as u64)
        .int("expected_bypasses", matrix.bypasses() as u64)
        .int("defense_regressions", matrix.regressions() as u64)
        .int("attack_classes_reported", matrix.classes_covered() as u64);
    for class in AttackClass::ALL {
        artifact = artifact.num(
            &format!("block_rate_{}_pct", class.key()),
            matrix.block_rate_pct(class).unwrap_or(0.0),
        );
    }
    match artifact.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench artifact: {e}"),
    }

    if matrix.regressions() > 0 {
        println!("FAIL: {} defense regressions", matrix.regressions());
        std::process::exit(1);
    }
    println!(
        "OK: {} campaigns, {} judged stages, {} documented bypasses, 0 regressions",
        reports.len(),
        stages_judged,
        matrix.bypasses()
    );
}
