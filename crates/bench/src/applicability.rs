//! §V-C: applicability & false-positive assessment over the app corpus.
//!
//! Every application in the 58-app device/screen pool and the 50-app
//! clipboard pool is driven through one usage session on a fresh protected
//! machine. The paper's findings to reproduce:
//!
//! * **zero broken applications** (no user-initiated access denied),
//! * exactly **one spurious alert** (Skype's pre-login camera probe,
//!   blocked by design),
//! * delayed screenshot timers beyond δ do not work (documented
//!   limitation),
//! * zero clipboard false positives across the 50-app pool.

use overhaul_apps::corpus::{clipboard_corpus, device_corpus};
use overhaul_apps::{run_session, AppSpec, SessionOutcome};
use overhaul_core::System;
use serde::{Deserialize, Serialize};

/// Aggregated results over one corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusReport {
    /// Corpus label.
    pub corpus: String,
    /// Applications tested.
    pub apps: usize,
    /// Applications that worked (no user-initiated access blocked).
    pub functional: usize,
    /// Total false positives (user-initiated accesses blocked).
    pub false_positives: usize,
    /// Expected blocks (autostart probes, delayed shots) — correct denials.
    pub expected_blocks: usize,
    /// Expected blocks that were wrongly granted (protection failures).
    pub protection_failures: usize,
    /// Names of apps with any false positive.
    pub broken_apps: Vec<String>,
    /// Names of apps that triggered expected blocks ("spurious alerts").
    pub spurious_alert_apps: Vec<String>,
}

/// Runs every app in `pool` on a fresh machine built by `make_system`.
pub fn run_corpus(
    corpus: &str,
    pool: &[AppSpec],
    mut make_system: impl FnMut() -> System,
) -> (CorpusReport, Vec<SessionOutcome>) {
    let mut report = CorpusReport {
        corpus: corpus.to_string(),
        apps: pool.len(),
        functional: 0,
        false_positives: 0,
        expected_blocks: 0,
        protection_failures: 0,
        broken_apps: Vec::new(),
        spurious_alert_apps: Vec::new(),
    };
    let mut outcomes = Vec::with_capacity(pool.len());
    for spec in pool {
        let mut system = make_system();
        let outcome = run_session(&mut system, spec);
        if outcome.functional() {
            report.functional += 1;
        } else {
            report.broken_apps.push(spec.name.clone());
        }
        report.false_positives += outcome.false_positives();
        report.protection_failures += outcome.protection_failures();
        let blocks = outcome.expected_blocks();
        if blocks > 0 {
            report.expected_blocks += blocks;
            report.spurious_alert_apps.push(spec.name.clone());
        }
        outcomes.push(outcome);
    }
    (report, outcomes)
}

/// Runs the full §V-C study on protected machines.
pub fn run_study() -> (CorpusReport, CorpusReport) {
    let (devices, _) = run_corpus("device/screen", &device_corpus(), System::protected);
    let (clipboard, _) = run_corpus("clipboard", &clipboard_corpus(), System::protected);
    (devices, clipboard)
}

/// Formats a corpus report.
pub fn format_report(report: &CorpusReport) -> String {
    let mut out = format!(
        "{} corpus: {} apps\n\
         \x20 functional            {}\n\
         \x20 false positives       {}\n\
         \x20 expected blocks       {}  ({})\n\
         \x20 protection failures   {}\n",
        report.corpus,
        report.apps,
        report.functional,
        report.false_positives,
        report.expected_blocks,
        if report.spurious_alert_apps.is_empty() {
            "none".to_string()
        } else {
            report.spurious_alert_apps.join(", ")
        },
        report.protection_failures,
    );
    if !report.broken_apps.is_empty() {
        out.push_str(&format!("  BROKEN: {}\n", report.broken_apps.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_corpus_reproduces_paper_findings() {
        let (report, _) = run_corpus("device/screen", &device_corpus(), System::protected);
        assert_eq!(report.apps, 58);
        assert_eq!(report.functional, 58, "broken: {:?}", report.broken_apps);
        assert_eq!(report.false_positives, 0);
        assert_eq!(report.protection_failures, 0);
        // Skype's autostart probe + the two delayed screenshot tools.
        assert!(report.spurious_alert_apps.contains(&"Skype".to_string()));
        assert_eq!(
            report.expected_blocks, 3,
            "{:?}",
            report.spurious_alert_apps
        );
    }

    #[test]
    fn clipboard_corpus_has_zero_false_positives() {
        let (report, _) = run_corpus("clipboard", &clipboard_corpus(), System::protected);
        assert_eq!(report.apps, 50);
        assert_eq!(report.functional, 50, "broken: {:?}", report.broken_apps);
        assert_eq!(report.false_positives, 0);
    }

    #[test]
    fn baseline_machines_show_protection_failures() {
        let (report, _) = run_corpus("device/screen", &device_corpus(), System::baseline);
        assert!(
            report.protection_failures > 0,
            "stock Linux grants launch probes"
        );
        assert_eq!(report.false_positives, 0, "baseline never denies anything");
    }

    #[test]
    fn report_formats_cleanly() {
        let (report, _) = run_corpus("clipboard", &clipboard_corpus()[..3], System::protected);
        let text = format_report(&report);
        assert!(text.contains("clipboard corpus: 3 apps"));
    }
}
