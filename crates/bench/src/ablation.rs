//! Ablation sweeps over Overhaul's design parameters.
//!
//! The paper fixes δ = 2 s ("less than 1 second could lead to falsely
//! revoked permissions"), the shared-memory wait window = 500 ms ("a good
//! performance-usability trade-off"), and a clickjacking visibility
//! threshold. These sweeps quantify each trade-off so the choices in
//! DESIGN.md are backed by measurements:
//!
//! * [`sweep_delta`] — false-deny rate on human-like reaction delays vs.
//!   the residual exposure window;
//! * [`sweep_shm_wait`] — fault (interposition) cost vs. missed
//!   shared-memory propagations;
//! * [`sweep_visibility`] — suppressed legitimate clicks vs. popup
//!   clickjacking success;
//! * [`sweep_propagation`] — app-corpus functionality with IPC
//!   propagation (P2) disabled.

use overhaul_apps::corpus::device_corpus;
use overhaul_apps::{run_session, Trigger};
use overhaul_core::{OverhaulConfig, System};
use overhaul_sim::{SimDuration, SimRng};
use overhaul_xserver::geometry::Rect;
use serde::{Deserialize, Serialize};

/// One point of the δ sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaPoint {
    /// The threshold δ.
    pub delta_ms: u64,
    /// Fraction of legitimate (input-driven) accesses falsely denied.
    pub false_deny_rate: f64,
    /// Fraction of time an app interacted-with every 30 s retains access
    /// (the residual exposure window).
    pub exposure_fraction: f64,
}

/// Sweeps δ. `trials` legitimate accesses are attempted per point, with
/// app reaction delays drawn from a human-like mixture (most within
/// 900 ms, a tail to 3 s).
pub fn sweep_delta(deltas_ms: &[u64], trials: u32, seed: u64) -> Vec<DeltaPoint> {
    deltas_ms
        .iter()
        .map(|&delta_ms| {
            let mut rng = SimRng::seeded(seed ^ delta_ms);
            let mut system = System::new(
                OverhaulConfig::protected().with_delta(SimDuration::from_millis(delta_ms)),
            );
            let app = system
                .launch_gui_app("/usr/bin/app", Rect::new(0, 0, 100, 100))
                .expect("launch");
            system.settle();
            let mut denied = 0u32;
            for _ in 0..trials {
                system.click_window(app.window);
                // App reaction delay: 80% fast (50–900 ms), 20% slow
                // (900–1900 ms) — I/O, codec init, network RTT. The paper
                // observed no legitimate app exceeding ~2 s.
                let delay = if rng.chance(0.8) {
                    rng.range(50, 900)
                } else {
                    rng.range(900, 1900)
                };
                system.advance(SimDuration::from_millis(delay));
                match system.open_device(app.pid, "/dev/snd/mic0") {
                    Ok(fd) => {
                        let _ = system.kernel_mut().sys_close(app.pid, fd);
                    }
                    Err(_) => denied += 1,
                }
                // Space trials beyond any δ under test.
                system.advance(SimDuration::from_millis(6000));
            }
            DeltaPoint {
                delta_ms,
                false_deny_rate: denied as f64 / trials as f64,
                exposure_fraction: (delta_ms as f64 / 30_000.0).min(1.0),
            }
        })
        .collect()
}

/// One point of the shared-memory wait sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShmWaitPoint {
    /// Wait-window length.
    pub wait_ms: u64,
    /// Page faults taken per 10 000 writes (interposition cost proxy).
    pub faults_per_10k: f64,
    /// Fraction of interaction handoffs missed because the window was
    /// open when the sender wrote.
    pub missed_propagation_rate: f64,
}

/// Sweeps the shared-memory wait window.
pub fn sweep_shm_wait(waits_ms: &[u64], trials: u32, seed: u64) -> Vec<ShmWaitPoint> {
    waits_ms
        .iter()
        .map(|&wait_ms| {
            // --- Cost: faults per 10k writes with time advancing 1 ms/write.
            let mut system = System::new(
                OverhaulConfig::protected().with_shm_wait(SimDuration::from_millis(wait_ms)),
            );
            let pid = system.spawn_process(None, "/usr/bin/w").expect("spawn");
            let shm = system.kernel_mut().sys_shmget(pid, 1, 4).expect("shmget");
            let vma = system.kernel_mut().sys_shmat(pid, shm).expect("shmat");
            let writes = 10_000u32;
            for i in 0..writes {
                system
                    .kernel_mut()
                    .sys_shm_write(pid, vma, (i as usize * 13) % 16_000, b"x")
                    .expect("write");
                system.advance(SimDuration::from_millis(1));
            }
            let faults = system.kernel().mm_stats().faults as f64;

            // --- Fidelity: does a click still reach the reader when the
            // sender writes at a random offset into the window?
            let mut rng = SimRng::seeded(seed ^ wait_ms.wrapping_add(1));
            let mut missed = 0u32;
            for _ in 0..trials {
                let mut system = System::new(
                    OverhaulConfig::protected().with_shm_wait(SimDuration::from_millis(wait_ms)),
                );
                let main = system
                    .launch_gui_app("/usr/bin/browser", Rect::new(0, 0, 100, 100))
                    .expect("launch");
                system.settle();
                let kernel = system.kernel_mut();
                let shm = kernel.sys_shmget(main.pid, 2, 1).expect("shmget");
                let main_vma = kernel.sys_shmat(main.pid, shm).expect("shmat");
                let worker = kernel.sys_fork(main.pid).expect("fork");
                let worker_vma = kernel.sys_shmat(worker, shm).expect("shmat worker");
                system.advance(SimDuration::from_secs(10));
                // Prime both mappings (the windows open now).
                system
                    .kernel_mut()
                    .sys_shm_write(main.pid, main_vma, 0, b"p")
                    .expect("prime");
                system
                    .kernel_mut()
                    .sys_shm_read(worker, worker_vma, 0, 1)
                    .expect("prime");
                // The click arrives at a random offset after the priming
                // access; the distribution is independent of the window
                // length (users do not adapt to kernel internals).
                let offset = rng.range(0, 2_000);
                system.advance(SimDuration::from_millis(offset));
                system.click_window(main.window);
                system
                    .kernel_mut()
                    .sys_shm_write(main.pid, main_vma, 0, b"c")
                    .expect("send");
                system
                    .kernel_mut()
                    .sys_shm_read(worker, worker_vma, 0, 1)
                    .expect("recv");
                if system.open_device(worker, "/dev/video0").is_err() {
                    missed += 1;
                }
            }
            ShmWaitPoint {
                wait_ms,
                faults_per_10k: faults / (writes as f64 / 10_000.0),
                missed_propagation_rate: missed as f64 / trials as f64,
            }
        })
        .collect()
}

/// One point of the visibility-threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisibilityPoint {
    /// The clickjacking visibility threshold.
    pub threshold_ms: u64,
    /// Fraction of legitimate clicks (on windows mapped 0–1 500 ms ago)
    /// whose interaction notification was suppressed.
    pub legit_suppression_rate: f64,
    /// Whether a popup window raised 50 ms before the click steals an
    /// interaction notification.
    pub popup_attack_succeeds: bool,
}

/// Sweeps the clickjacking visibility threshold.
pub fn sweep_visibility(thresholds_ms: &[u64], trials: u32, seed: u64) -> Vec<VisibilityPoint> {
    thresholds_ms
        .iter()
        .map(|&threshold_ms| {
            let mut rng = SimRng::seeded(seed ^ threshold_ms.wrapping_add(99));
            let mut suppressed = 0u32;
            for _ in 0..trials {
                let mut system = System::new(
                    OverhaulConfig::protected()
                        .with_visibility_threshold(SimDuration::from_millis(threshold_ms)),
                );
                // Let the system clock move past any threshold first so the
                // "since boot" corner does not dominate.
                system.advance(SimDuration::from_secs(30));
                let app = system
                    .launch_gui_app("/usr/bin/app", Rect::new(0, 0, 100, 100))
                    .expect("launch");
                let reaction = rng.range(0, 1_500);
                system.advance(SimDuration::from_millis(reaction));
                system.click_window(app.window);
                system.advance(SimDuration::from_millis(10));
                if system.open_device(app.pid, "/dev/snd/mic0").is_err() {
                    suppressed += 1;
                }
            }

            // Popup attack: window raised 50 ms before the click.
            let mut system = System::new(
                OverhaulConfig::protected()
                    .with_visibility_threshold(SimDuration::from_millis(threshold_ms)),
            );
            system.advance(SimDuration::from_secs(30));
            let trap = system
                .launch_gui_app("/usr/bin/.trap", Rect::new(0, 0, 100, 100))
                .expect("launch trap");
            system.advance(SimDuration::from_millis(50));
            system.click_window(trap.window);
            system.advance(SimDuration::from_millis(10));
            let popup_attack_succeeds = system.open_device(trap.pid, "/dev/video0").is_ok();

            VisibilityPoint {
                threshold_ms,
                legit_suppression_rate: suppressed as f64 / trials as f64,
                popup_attack_succeeds,
            }
        })
        .collect()
}

/// Result of the propagation ablation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationReport {
    /// Apps relying on IPC or CLI propagation in the corpus.
    pub dependent_apps: usize,
    /// Of those, functional with P2 enabled.
    pub functional_with_p2: usize,
    /// Of those, functional with P2 disabled.
    pub functional_without_p2: usize,
}

/// Runs the IPC/CLI-dependent corpus apps with and without P2.
pub fn sweep_propagation() -> PropagationReport {
    let dependent: Vec<_> = device_corpus()
        .into_iter()
        .filter(|app| {
            app.accesses
                .iter()
                .any(|a| matches!(a.trigger, Trigger::ViaIpc(_) | Trigger::ViaCli))
        })
        .collect();
    let mut report = PropagationReport {
        dependent_apps: dependent.len(),
        functional_with_p2: 0,
        functional_without_p2: 0,
    };
    for app in &dependent {
        let mut system = System::protected();
        if run_session(&mut system, app).functional() {
            report.functional_with_p2 += 1;
        }
        let mut config = OverhaulConfig::protected();
        config.kernel.ipc_propagation = false;
        let mut system = System::new(config);
        if run_session(&mut system, app).functional() {
            report.functional_without_p2 += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_sweep_shows_the_paper_crossover() {
        let points = sweep_delta(&[500, 2000], 40, 11);
        let short = &points[0];
        let paper = &points[1];
        assert!(
            short.false_deny_rate > paper.false_deny_rate,
            "sub-second δ falsely revokes more: {points:?}"
        );
        assert!(
            paper.false_deny_rate < 0.05,
            "2 s δ is sufficient, as the paper found: {paper:?}"
        );
        assert!(short.exposure_fraction < paper.exposure_fraction);
    }

    #[test]
    fn shm_sweep_trades_faults_for_fidelity() {
        let points = sweep_shm_wait(&[50, 1000], 20, 13);
        assert!(
            points[0].faults_per_10k > points[1].faults_per_10k,
            "shorter windows fault more: {points:?}"
        );
        assert!(
            points[0].missed_propagation_rate <= points[1].missed_propagation_rate,
            "longer windows miss more handoffs: {points:?}"
        );
    }

    #[test]
    fn visibility_sweep_trades_suppression_for_popup_defense() {
        let points = sweep_visibility(&[0, 400], 30, 17);
        assert!(points[0].popup_attack_succeeds, "no threshold, popup wins");
        assert!(
            !points[1].popup_attack_succeeds,
            "threshold beats the popup"
        );
        assert!(
            points[0].legit_suppression_rate <= points[1].legit_suppression_rate,
            "{points:?}"
        );
    }

    #[test]
    fn propagation_ablation_breaks_dependent_apps() {
        let report = sweep_propagation();
        assert!(report.dependent_apps >= 8);
        assert_eq!(report.functional_with_p2, report.dependent_apps);
        assert_eq!(
            report.functional_without_p2, 0,
            "without P2 every IPC/CLI app breaks: {report:?}"
        );
    }
}
