//! The attack matrix: every §II/§IV attack crossed with machine
//! configurations (protected, kernel-integrated, stock baseline), plus
//! the multi-stage campaign defense matrix layered on top.
//!
//! Shared by the `attack_matrix` integration test (which asserts the
//! expected outcomes), the `campaign_matrix` suite, and the
//! `attack_matrix` binary (which prints both tables and emits the
//! `BENCH_attack_matrix.json` artifact CI diffs against its baseline).

use overhaul_apps::campaign::{
    catalog, run_campaign, CampaignReport, DefenseMatrix, Expectation as CampaignExpectation,
};
use overhaul_apps::malware::{input_forgery_attack, selection_bypass_attack, Spyware};
use overhaul_core::{Gui, OverhaulConfig, Recorder, System};
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, Request};
use serde::{Deserialize, Serialize};

/// Machine configurations the matrix runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineKind {
    /// The paper's configuration (userspace DM + netlink).
    Protected,
    /// The §III kernel-integrated display-manager variant.
    Integrated,
    /// Stock, unprotected stack.
    Baseline,
}

impl MachineKind {
    /// All configurations, in reporting order.
    pub const ALL: [MachineKind; 3] = [
        MachineKind::Protected,
        MachineKind::Integrated,
        MachineKind::Baseline,
    ];

    /// Boots a machine of this kind.
    pub fn boot(self) -> System {
        match self {
            MachineKind::Protected => System::protected(),
            MachineKind::Integrated => System::integrated(),
            MachineKind::Baseline => System::baseline(),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MachineKind::Protected => "protected",
            MachineKind::Integrated => "integrated",
            MachineKind::Baseline => "baseline",
        }
    }

    /// Whether Overhaul protections are active on this machine.
    pub fn protected(self) -> bool {
        !matches!(self, MachineKind::Baseline)
    }
}

/// One attack × machine outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Attack name.
    pub attack: &'static str,
    /// Machine configuration.
    pub machine: MachineKind,
    /// Whether the attack obtained what it wanted.
    pub succeeded: bool,
}

/// Sets up a victim clipboard owner with a user-initiated copy.
fn clipboard_victim(machine: &mut System) -> (Gui, Vec<u8>) {
    let app = machine
        .launch_gui_app("/usr/bin/keepassx", Rect::new(0, 0, 150, 150))
        .expect("launch victim");
    machine.settle();
    machine.click_window(app.window);
    machine
        .x_request(
            app.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: app.window,
            },
        )
        .expect("user-initiated copy");
    (app, b"s3cret".to_vec())
}

/// The attacks, each a closure over a fresh machine.
pub fn attack_names() -> Vec<&'static str> {
    vec![
        "background spyware sampling",
        "synthetic input forgery",
        "forged SelectionRequest bypass",
        "foreign-window GetImage",
        "CopyArea exfiltration",
        "ptrace permission theft",
    ]
}

fn run_attack(name: &str, mut machine: System) -> bool {
    match name {
        "background spyware sampling" => {
            let (owner, secret) = clipboard_victim(&mut machine);
            let mut spy = Spyware::install(&mut machine);
            machine.advance(SimDuration::from_secs(60));
            spy.run_cycle(&mut machine);
            overhaul_apps::malware::answer_selection_requests(&mut machine, owner.client, &secret);
            machine.advance(SimDuration::from_secs(60));
            spy.run_cycle(&mut machine);
            spy.total_stolen() > 0
        }
        "synthetic input forgery" => {
            let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
            input_forgery_attack(&mut machine, spy)
        }
        "forged SelectionRequest bypass" => {
            let (owner, secret) = clipboard_victim(&mut machine);
            let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
            selection_bypass_attack(&mut machine, spy, owner.client, owner.window, &secret)
                .is_some()
        }
        "foreign-window GetImage" => {
            let victim = machine
                .launch_gui_app("/usr/bin/bank", Rect::new(0, 0, 100, 100))
                .unwrap();
            machine.settle();
            let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
            let spy_client = machine.connect_x(spy);
            machine
                .x_request(
                    spy_client,
                    Request::GetImage {
                        window: Some(victim.window),
                    },
                )
                .is_ok()
        }
        "CopyArea exfiltration" => {
            let victim = machine
                .launch_gui_app("/usr/bin/bank", Rect::new(0, 0, 100, 100))
                .unwrap();
            machine.settle();
            let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
            let spy_client = machine.connect_x(spy);
            let spy_window = match machine
                .x_request(
                    spy_client,
                    Request::CreateWindow {
                        rect: Rect::new(0, 0, 100, 100),
                    },
                )
                .unwrap()
            {
                overhaul_xserver::protocol::Reply::Window(w) => w,
                _ => unreachable!(),
            };
            machine
                .x_request(
                    spy_client,
                    Request::CopyArea {
                        src: Some(victim.window),
                        dst: spy_window,
                    },
                )
                .is_ok()
        }
        "ptrace permission theft" => {
            let spy = machine.spawn_process(None, "/usr/bin/.spy").unwrap();
            overhaul_apps::malware::ptrace_injection_attack(&mut machine, spy)
        }
        other => panic!("unknown attack {other}"),
    }
}

/// Runs the full matrix.
pub fn run_matrix() -> Vec<MatrixCell> {
    let mut cells = Vec::new();
    for attack in attack_names() {
        for machine in MachineKind::ALL {
            cells.push(MatrixCell {
                attack,
                machine,
                succeeded: run_attack(attack, machine.boot()),
            });
        }
    }
    cells
}

/// Formats the matrix as a table.
pub fn format_matrix(cells: &[MatrixCell]) -> String {
    let mut out = format!(
        "{:<32} {:>10} {:>10} {:>10}\n",
        "attack", "protected", "integrated", "baseline"
    );
    for attack in attack_names() {
        let outcome = |kind: MachineKind| {
            cells
                .iter()
                .find(|c| c.attack == attack && c.machine == kind)
                .map(|c| if c.succeeded { "SUCCEEDS" } else { "blocked" })
                .unwrap_or("?")
        };
        out.push_str(&format!(
            "{:<32} {:>10} {:>10} {:>10}\n",
            attack,
            outcome(MachineKind::Protected),
            outcome(MachineKind::Integrated),
            outcome(MachineKind::Baseline),
        ));
    }
    out
}

// ------------------------------------------------------------------
// Campaign defense matrix: the multi-stage companion to the single-shot
// matrix above. Each catalog campaign runs on a fresh recorder under
// the strict judge (no fault plan, so no excused denies), so a nonzero
// regression count is always a real semantics change.
// ------------------------------------------------------------------

/// Runs the full campaign catalog against machines booted from `config`,
/// one fresh recorder per campaign, strict judging.
pub fn run_campaign_matrix(config: &OverhaulConfig) -> (DefenseMatrix, Vec<CampaignReport>) {
    let mut matrix = DefenseMatrix::new();
    let mut reports = Vec::new();
    for campaign in catalog() {
        let mut rec = Recorder::new(config.clone());
        let report = run_campaign(&mut rec, &campaign, false);
        matrix.absorb(&report);
        reports.push(report);
    }
    (matrix, reports)
}

/// Renders every documented bypass that occurred, with the paper-grounded
/// rationale its expectation carries — the "why the model cannot stop
/// this" column of the report.
pub fn format_bypass_rationales(reports: &[CampaignReport]) -> String {
    let mut out = String::from("documented bypasses (inherent to the input-driven model):\n");
    for report in reports {
        for stage in &report.stages {
            let Some(check) = &stage.check else { continue };
            if let CampaignExpectation::ExpectedBypass { rationale } = &check.expect {
                out.push_str(&format!(
                    "  [{}] {}: {}\n",
                    report.name, stage.stage, rationale
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_every_cell() {
        let cells = run_matrix();
        assert_eq!(cells.len(), attack_names().len() * MachineKind::ALL.len());
    }

    #[test]
    fn protected_and_integrated_block_everything_baseline_blocks_nothing() {
        for cell in run_matrix() {
            if cell.machine.protected() {
                assert!(
                    !cell.succeeded,
                    "{} must fail on {}",
                    cell.attack,
                    cell.machine.label()
                );
            } else {
                assert!(
                    cell.succeeded,
                    "{} should succeed on the stock baseline",
                    cell.attack
                );
            }
        }
    }

    #[test]
    fn campaign_matrix_is_clean_on_protected_and_trips_on_grant_all() {
        let (matrix, reports) = run_campaign_matrix(&OverhaulConfig::protected());
        assert_eq!(matrix.regressions(), 0, "\n{}", matrix.render());
        assert_eq!(matrix.classes_covered(), 3);
        assert!(matrix.bypasses() >= 3);
        let rationales = format_bypass_rationales(&reports);
        assert!(rationales.contains("hover-theft"));
        assert!(rationales.contains("delegation-abuse"));
        assert!(rationales.contains("operation-binding"));

        let (open, _) = run_campaign_matrix(&OverhaulConfig::grant_all());
        assert!(open.regressions() > 0, "grant-all must regress");
    }
}
