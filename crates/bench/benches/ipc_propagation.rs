//! Per-mechanism IPC propagation overhead.
//!
//! The paper notes its "preliminary measurements indicated that the shared
//! memory communication incurred the highest overhead" among the IPC
//! mechanisms — which is why Table I stresses shared memory specifically.
//! This bench measures one send+receive round trip per mechanism under
//! baseline and Overhaul stacks, so the per-mechanism ranking is visible.

use criterion::{criterion_group, criterion_main, Criterion};
use overhaul_core::System;
use overhaul_sim::{Pid, SimDuration};

struct Pair {
    system: System,
    a: Pid,
    b: Pid,
}

fn pair(protected: bool) -> Pair {
    let mut system = if protected {
        System::grant_all()
    } else {
        System::baseline()
    };
    let a = system.spawn_process(None, "/usr/bin/a").expect("spawn a");
    let b = system.spawn_process(None, "/usr/bin/b").expect("spawn b");
    Pair { system, a, b }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ipc_propagation");

    for (label, protected) in [("baseline", false), ("overhaul", true)] {
        // Pipe round trip.
        {
            let mut p = pair(protected);
            let (r, w) = p.system.kernel_mut().sys_pipe(p.a).unwrap();
            group.bench_function(format!("{label}/pipe"), |bench| {
                bench.iter(|| {
                    p.system.kernel_mut().sys_write(p.a, w, b"m").unwrap();
                    p.system.kernel_mut().sys_read(p.a, r, 8).unwrap();
                })
            });
        }
        // SysV message queue round trip.
        {
            let mut p = pair(protected);
            let q = p.system.kernel_mut().sys_msgget(p.a, 1).unwrap();
            group.bench_function(format!("{label}/sysv_msgq"), |bench| {
                bench.iter(|| {
                    p.system.kernel_mut().sys_msgsnd(p.a, q, 1, b"m").unwrap();
                    p.system.kernel_mut().sys_msgrcv(p.b, q, 1).unwrap();
                })
            });
        }
        // Socket datagram round trip.
        {
            let mut p = pair(protected);
            let (sa, sb) = p.system.kernel_mut().sys_socketpair(p.a).unwrap();
            group.bench_function(format!("{label}/unix_socket"), |bench| {
                bench.iter(|| {
                    p.system.kernel_mut().sys_write(p.a, sa, b"m").unwrap();
                    p.system.kernel_mut().sys_read(p.a, sb, 8).unwrap();
                })
            });
        }
        // Shared-memory write+read with periodic re-arming (the paper's
        // highest-overhead mechanism).
        {
            let mut p = pair(protected);
            let shm = p.system.kernel_mut().sys_shmget(p.a, 9, 1).unwrap();
            let va = p.system.kernel_mut().sys_shmat(p.a, shm).unwrap();
            let vb = p.system.kernel_mut().sys_shmat(p.b, shm).unwrap();
            let mut ops = 0u64;
            group.bench_function(format!("{label}/shared_memory"), |bench| {
                bench.iter(|| {
                    p.system
                        .kernel_mut()
                        .sys_shm_write(p.a, va, 0, b"m")
                        .unwrap();
                    p.system.kernel_mut().sys_shm_read(p.b, vb, 0, 1).unwrap();
                    ops += 1;
                    if ops.is_multiple_of(2048) {
                        p.system.advance(SimDuration::from_millis(600));
                    }
                })
            });
        }
        // Pseudo-terminal write+read.
        {
            let mut p = pair(protected);
            let (master, slave) = p.system.kernel_mut().sys_openpty(p.a).unwrap();
            group.bench_function(format!("{label}/pty"), |bench| {
                bench.iter(|| {
                    p.system.kernel_mut().sys_write(p.a, master, b"m").unwrap();
                    p.system.kernel_mut().sys_read(p.a, slave, 8).unwrap();
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
