//! Table I, row "Clipboard": full ICCCM paste operations (the worst case
//! per the paper), baseline vs. Overhaul grant-all.

use criterion::{criterion_group, criterion_main, Criterion};
use overhaul_bench::table1::{clipboard_iter, clipboard_setup};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/clipboard_paste");
    let mut baseline = clipboard_setup(false);
    group.bench_function("baseline", |b| b.iter(|| clipboard_iter(&mut baseline)));
    let mut overhaul = clipboard_setup(true);
    group.bench_function("overhaul", |b| b.iter(|| clipboard_iter(&mut overhaul)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
