//! Table I, row "Bonnie++": create/stat/delete cycles on regular files —
//! the mediation hook must cost (almost) nothing on non-device opens.

use criterion::{criterion_group, criterion_main, Criterion};
use overhaul_bench::table1::{fs_iter, fs_setup};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/filesystem");
    let mut baseline = fs_setup(false);
    group.bench_function("baseline", |b| b.iter(|| fs_iter(&mut baseline)));
    let mut overhaul = fs_setup(true);
    group.bench_function("overhaul", |b| b.iter(|| fs_iter(&mut overhaul)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
