//! Table I, row "Screen Capture": root-window `GetImage`, baseline vs.
//! Overhaul grant-all.

use criterion::{criterion_group, criterion_main, Criterion};
use overhaul_bench::table1::{screen_iter, screen_setup};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/screen_capture");
    group.sample_size(40);
    let mut baseline = screen_setup(false);
    group.bench_function("baseline", |b| b.iter(|| screen_iter(&mut baseline)));
    let mut overhaul = screen_setup(true);
    group.bench_function("overhaul", |b| b.iter(|| screen_iter(&mut overhaul)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
