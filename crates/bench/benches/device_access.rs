//! Table I, row "Device Access": `open(2)` on the microphone node,
//! baseline vs. Overhaul grant-all.

use criterion::{criterion_group, criterion_main, Criterion};
use overhaul_bench::table1::{device_iter, device_setup};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/device_access");
    let mut baseline = device_setup(false);
    group.bench_function("baseline", |b| b.iter(|| device_iter(&mut baseline)));
    let mut overhaul = device_setup(true);
    group.bench_function("overhaul", |b| b.iter(|| device_iter(&mut overhaul)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
