//! Table I, row "Shared Memory": stores into a shared mapping with the
//! fault-interposition machinery re-arming as virtual time advances.
//!
//! The paper swept segment sizes from 1 to 10 000 pages and found no
//! correlation; this bench keeps two representative sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use overhaul_bench::table1::{shm_iter, shm_setup};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/shared_memory");
    for pages in [1usize, 64] {
        let mut baseline = shm_setup(false, pages);
        group.bench_function(format!("baseline/{pages}pages"), |b| {
            b.iter(|| shm_iter(&mut baseline))
        });
        let mut overhaul = shm_setup(true, pages);
        group.bench_function(format!("overhaul/{pages}pages"), |b| {
            b.iter(|| shm_iter(&mut overhaul))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
