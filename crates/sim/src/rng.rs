//! Deterministic randomness for workload generation.
//!
//! Experiment harnesses (the 21-day empirical run, the usability study, the
//! δ-threshold ablations) need randomness — interaction timing jitter, which
//! app the simulated user touches next — but must stay replayable. `SimRng`
//! wraps a fixed-algorithm, seedable generator so a seed fully determines an
//! experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A seedable deterministic random source.
///
/// ```
/// use overhaul_sim::SimRng;
///
/// let mut a = SimRng::seeded(7);
/// let mut b = SimRng::seeded(7);
/// assert_eq!(a.range(0, 100), b.range(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// A uniform duration in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn duration_between(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_millis(self.range(lo.as_millis(), hi.as_millis()))
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.range(0, items.len() as u64) as usize;
            Some(&items[idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(123);
        let mut b = SimRng::seeded(123);
        for _ in 0..32 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..16)
            .filter(|_| a.range(0, 1 << 30) == b.range(0, 1 << 30))
            .count();
        assert!(same < 16, "independent seeds should not track each other");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::seeded(9);
        for _ in 0..256 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn pick_handles_empty_and_nonempty() {
        let mut rng = SimRng::seeded(11);
        let empty: [u8; 0] = [];
        assert!(rng.pick(&empty).is_none());
        let items = [1u8, 2, 3];
        assert!(items.contains(rng.pick(&items).unwrap()));
    }

    #[test]
    fn duration_between_stays_in_window() {
        let mut rng = SimRng::seeded(21);
        let lo = SimDuration::from_millis(100);
        let hi = SimDuration::from_millis(200);
        for _ in 0..64 {
            let d = rng.duration_between(lo, hi);
            assert!(d >= lo && d < hi);
        }
    }
}
