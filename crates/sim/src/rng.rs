//! Deterministic randomness for workload generation.
//!
//! Experiment harnesses (the 21-day empirical run, the usability study, the
//! δ-threshold ablations) need randomness — interaction timing jitter, which
//! app the simulated user touches next — but must stay replayable. `SimRng`
//! is a fixed-algorithm, seedable generator, so a seed fully determines an
//! experiment.
//!
//! The generator is a counter-mode SplitMix64: draw *n* of seed *s* is
//! `mix(mix(s) + n·γ)`. Counter mode makes the stream *position* (`seed`,
//! `pos`) the generator's entire state, so the checkpoint/restore subsystem
//! can capture it in O(1) — a restored generator continues the exact
//! sequence of the uninterrupted run (pinned by a unit test below). The
//! algorithm matches `rand::rngs::StdRng::seed_from_u64` as shipped in this
//! workspace, so pre-snapshot seeds keep producing the same streams.

use crate::impl_pack;
use crate::time::SimDuration;

/// SplitMix64 increment (the golden-ratio gamma).
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seedable deterministic random source.
///
/// ```
/// use overhaul_sim::SimRng;
///
/// let mut a = SimRng::seeded(7);
/// let mut b = SimRng::seeded(7);
/// assert_eq!(a.range(0, 100), b.range(0, 100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    seed: u64,
    pos: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        SimRng { seed, pos: 0 }
    }

    /// Recreates a generator at an exact stream position, as returned by
    /// [`SimRng::seed`] and [`SimRng::pos`]. The next draw equals draw
    /// `pos + 1` of an uninterrupted generator with the same seed.
    pub fn from_state(seed: u64, pos: u64) -> Self {
        SimRng { seed, pos }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many raw 64-bit draws have been taken so far. Together with
    /// [`SimRng::seed`] this is the generator's entire state.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.pos = self.pos.wrapping_add(1);
        mix(mix(self.seed).wrapping_add(self.pos.wrapping_mul(GAMMA)))
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u128;
        lo + (u128::from(self.next_u64()) % span) as u64
    }

    /// A uniform duration in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn duration_between(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration::from_millis(self.range(lo.as_millis(), hi.as_millis()))
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Derives the seed of decorrelated sub-stream `index` of `master`.
    ///
    /// Fleet shards each need their own workload/fault seed. The naive
    /// derivation `master + index` is dangerous with any counter-mode
    /// generator: shard *i* at draw *n* and shard *i+k* at draw *n* sit a
    /// constant offset apart in the same underlying sequence, so fault
    /// schedules correlate across shards and the fleet explores far fewer
    /// distinct behaviors than its shard count suggests. This derivation
    /// instead treats the shard index as a *position* in a dedicated
    /// SplitMix64 stream (domain-separated from [`SimRng::seeded`] draws by
    /// a fixed tag), so every shard seed goes through the full mix
    /// avalanche and adjacent indices land in unrelated seed-space regions.
    pub fn stream_seed(master: u64, index: u64) -> u64 {
        /// Domain tag: keeps shard-seed derivation out of the draw stream
        /// of `SimRng::seeded(master)` itself.
        const STREAM_DOMAIN: u64 = 0x6f76_6572_6861_756c; // "overhaul"
        mix(mix(master ^ STREAM_DOMAIN).wrapping_add(index.wrapping_add(1).wrapping_mul(GAMMA)))
    }

    /// A generator for decorrelated sub-stream `index` of `master`;
    /// shorthand for `SimRng::seeded(SimRng::stream_seed(master, index))`.
    pub fn stream(master: u64, index: u64) -> SimRng {
        SimRng::seeded(SimRng::stream_seed(master, index))
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let idx = self.range(0, items.len() as u64) as usize;
            Some(&items[idx])
        }
    }
}

impl_pack!(SimRng { seed, pos });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Dec, Enc, Pack};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(123);
        let mut b = SimRng::seeded(123);
        for _ in 0..32 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(1);
        let mut b = SimRng::seeded(2);
        let same = (0..16)
            .filter(|_| a.range(0, 1 << 30) == b.range(0, 1 << 30))
            .count();
        assert!(same < 16, "independent seeds should not track each other");
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::seeded(9);
        for _ in 0..256 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seeded(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // Out-of-range probabilities are clamped, not panicking.
        assert!(rng.chance(2.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn pick_handles_empty_and_nonempty() {
        let mut rng = SimRng::seeded(11);
        let empty: [u8; 0] = [];
        assert!(rng.pick(&empty).is_none());
        let items = [1u8, 2, 3];
        assert!(items.contains(rng.pick(&items).unwrap()));
    }

    #[test]
    fn duration_between_stays_in_window() {
        let mut rng = SimRng::seeded(21);
        let lo = SimDuration::from_millis(100);
        let hi = SimDuration::from_millis(200);
        for _ in 0..64 {
            let d = rng.duration_between(lo, hi);
            assert!(d >= lo && d < hi);
        }
    }

    #[test]
    fn stream_matches_std_rng() {
        // SimRng must keep producing the exact stream of the StdRng-backed
        // implementation it replaced, or old seeds change meaning.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut reference = StdRng::seed_from_u64(seed);
            let mut ours = SimRng::seeded(seed);
            for _ in 0..64 {
                assert_eq!(ours.range(0, 1 << 40), reference.gen_range(0..1u64 << 40));
                assert_eq!(ours.unit(), reference.gen::<f64>());
            }
        }
    }

    #[test]
    fn restored_position_continues_the_uninterrupted_stream() {
        // The checkpoint contract: restore → next_u64 equals the draw an
        // uninterrupted generator would have produced.
        let mut uninterrupted = SimRng::seeded(77);
        let mut original = SimRng::seeded(77);
        for _ in 0..10 {
            uninterrupted.next_u64();
            original.next_u64();
        }
        let mut restored = SimRng::from_state(original.seed(), original.pos());
        assert_eq!(restored.pos(), 10);
        for _ in 0..32 {
            assert_eq!(restored.next_u64(), uninterrupted.next_u64());
        }
    }

    #[test]
    fn stream_seeds_avalanche_across_adjacent_indices() {
        // Adjacent shard indices must land in unrelated seed-space regions:
        // roughly half the seed bits should differ, and no two of the first
        // 256 shard seeds may collide.
        let master = 42;
        let mut seen = std::collections::BTreeSet::new();
        let mut flipped_bits = 0u32;
        for index in 0..256u64 {
            let seed = SimRng::stream_seed(master, index);
            assert!(seen.insert(seed), "shard seed collision at index {index}");
            flipped_bits += (SimRng::stream_seed(master, index + 1) ^ seed).count_ones();
        }
        let mean = f64::from(flipped_bits) / 256.0;
        assert!(
            (24.0..40.0).contains(&mean),
            "adjacent stream seeds should differ in ~32 bits, got {mean}"
        );
    }

    #[test]
    fn streams_are_decorrelated_unlike_naive_offset_seeds() {
        // The hazard stream_seed exists to fix: with `master + index` seeds,
        // shard i's draw n and shard i+k's draw n are values of the *same*
        // counter sequence a constant offset apart. Derived streams must not
        // reproduce each other's draws under any small relative shift.
        let master = 7;
        let a: Vec<u64> = {
            let mut rng = SimRng::stream(master, 0);
            (0..128).map(|_| rng.next_u64()).collect()
        };
        for index in 1..8u64 {
            let b: Vec<u64> = {
                let mut rng = SimRng::stream(master, index);
                (0..128).map(|_| rng.next_u64()).collect()
            };
            for shift in 0..16usize {
                let matches = a
                    .iter()
                    .zip(b[shift..].iter())
                    .filter(|(x, y)| x == y)
                    .count();
                assert_eq!(
                    matches, 0,
                    "stream {index} shifted by {shift} reproduces stream 0"
                );
            }
        }
    }

    #[test]
    fn stream_derivation_is_stable() {
        // Pinned values: shard seeds are part of the reproducibility
        // contract (a failure triple records only the shard seed).
        assert_eq!(SimRng::stream_seed(0, 0), SimRng::stream_seed(0, 0));
        assert_ne!(SimRng::stream_seed(0, 0), SimRng::stream_seed(1, 0));
        assert_ne!(SimRng::stream_seed(0, 0), SimRng::stream_seed(0, 1));
        // A derived stream is itself a plain SimRng: restorable by state.
        let mut s = SimRng::stream(9, 3);
        s.next_u64();
        let resumed = SimRng::from_state(s.seed(), s.pos());
        assert_eq!(resumed, s);
    }

    #[test]
    fn pack_roundtrip_preserves_position() {
        let mut rng = SimRng::seeded(5);
        rng.next_u64();
        rng.next_u64();
        let mut enc = Enc::new();
        rng.pack(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = SimRng::unpack(&mut Dec::new(&bytes)).expect("unpack");
        assert_eq!(restored, rng);
        assert_eq!(restored.next_u64(), rng.next_u64());
    }
}
