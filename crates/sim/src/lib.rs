//! Deterministic simulation substrate for the Overhaul reproduction.
//!
//! The original Overhaul prototype (Onarlioglu et al., DSN 2016) patched a
//! live Linux kernel and the X.Org server. This reproduction executes the
//! same state machines inside a deterministic user-space simulation; this
//! crate provides the shared foundation:
//!
//! * [`time`] — a virtual clock ([`Clock`]) with millisecond-resolution
//!   [`Timestamp`]s and [`SimDuration`]s. All temporal-proximity checks
//!   (the paper's δ threshold) are evaluated against this clock, which makes
//!   every experiment replayable bit-for-bit.
//! * [`ids`] — strongly typed identifiers ([`Pid`], [`Uid`], [`Fd`]) shared
//!   by the kernel and display-manager simulators.
//! * [`rng`] — a seedable deterministic random source used by workload
//!   generators.
//! * [`audit`] — a structured audit log; the permission monitor, the display
//!   manager, and the experiment harnesses all append here, and the
//!   evaluation binaries read their results back out of it.
//! * [`trace`] — deterministic virtual-time span tracing ([`Tracer`]) and a
//!   [`MetricsRegistry`] of counters/gauges/histograms; every mediation path
//!   (decisions, channel exchanges, page faults, IPC propagation hops,
//!   input authentication) reports here, and the same seed produces a
//!   byte-identical trace dump.
//! * [`snapshot`] — the versioned binary checkpoint codec ([`Pack`],
//!   [`Snapshot`]) and the canonical FNV-1a [`snapshot::fnv1a64`] state
//!   hash behind `System::snapshot` / `System::restore` and record/replay.
//! * [`ledger`] — the append-only, hash-chained authoritative history
//!   ([`Ledger`]): typed entries with structured [`Effect`]s, a sealed
//!   running chain hash ([`Ledger::verify_chain`]), the legacy
//!   [`AuditLog`] maintained as a rendered projection, and control-plane
//!   state as a deterministic reduction ([`ControlPlane`]).
//!
//! # Example
//!
//! ```
//! use overhaul_sim::{Clock, SimDuration};
//!
//! let clock = Clock::new();
//! let t0 = clock.now();
//! clock.advance(SimDuration::from_millis(1500));
//! assert_eq!(clock.now() - t0, SimDuration::from_millis(1500));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod artifact;
pub mod audit;
pub mod fault;
pub mod ids;
pub mod ledger;
pub mod rng;
pub mod sketch;
pub mod snapshot;
pub mod time;
pub mod trace;
pub mod work;

pub use arena::{Interner, Slab, SlotId, Sym};
pub use artifact::BenchArtifact;
pub use audit::{AuditCategory, AuditEvent, AuditLog};
pub use fault::{ChannelFault, FaultPlan, FaultSpec, FaultStats};
pub use ids::{Fd, Pid, Uid};
pub use ledger::{
    ChannelTag, ConfigKey, ControlPlane, Effect, Ledger, LedgerEntry, LedgerError, LedgerSummary,
    RuleKind, SealedEntry,
};
pub use rng::SimRng;
pub use sketch::{Exemplar, Mechanism, Sketch, SketchBook, Sketches, FLEET_QUANTILES};
pub use snapshot::{Dec, Enc, Pack, Snapshot, SnapshotError};
pub use time::{Clock, SimDuration, Timestamp};
pub use trace::{
    label_metric, MetricsRegistry, SpanId, SpanKind, SpanNode, Tracer, Value as TraceValue,
};
