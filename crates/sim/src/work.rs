//! Calibrated synthetic work.
//!
//! The simulator executes in nanoseconds operations that cost microseconds
//! to milliseconds on a real machine (device driver bring-up, X socket
//! round trips, netlink context switches, overlay rendering, framebuffer
//! transfers). Left unmodeled, that asymmetry wildly inflates *relative*
//! overhead numbers: a 100 ns mediation check looks like +50 % on a 200 ns
//! simulated `open`, where the paper measured +2.17 % on a 4.5 µs real one.
//!
//! [`spin`] busy-waits for a wall-clock duration; the subsystems that
//! correspond to expensive real-world operations call it with constants
//! derived from the paper's Table I baseline per-operation times (each
//! call site documents its derivation). The work applies identically to
//! baseline and Overhaul configurations, so it calibrates denominators
//! without manufacturing overheads.

use std::time::{Duration, Instant};

/// Busy-waits for `d` of wall-clock time.
///
/// Durations below ~100 ns are not reliably resolvable and may take
/// slightly longer; all calibrated constants in this workspace are ≥ 1 µs.
pub fn spin(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// [`spin`] for a duration given in microseconds.
pub fn spin_micros(micros: u64) {
    spin(Duration::from_micros(micros));
}

/// [`spin`] for a duration given in nanoseconds.
pub fn spin_nanos(nanos: u64) {
    spin(Duration::from_nanos(nanos));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_takes_at_least_the_requested_time() {
        let start = Instant::now();
        spin(Duration::from_micros(200));
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn zero_spin_returns_immediately() {
        let start = Instant::now();
        spin(Duration::ZERO);
        assert!(start.elapsed() < Duration::from_millis(5));
    }
}
