//! Virtual time.
//!
//! Overhaul's access-control decision is a comparison of two timestamps: the
//! most recent authentic user interaction with a process, and the time of a
//! privileged operation. Running that logic against wall-clock time would
//! make tests flaky and experiments irreproducible, so the whole simulation
//! shares one [`Clock`] that only moves when a test or harness advances it.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A point in virtual time, in milliseconds since simulation start.
///
/// `Timestamp` is ordered and cheap to copy; subtracting two timestamps
/// yields a [`SimDuration`].
///
/// ```
/// use overhaul_sim::{SimDuration, Timestamp};
///
/// let a = Timestamp::from_millis(100);
/// let b = a + SimDuration::from_millis(250);
/// assert_eq!(b - a, SimDuration::from_millis(250));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp (simulation start).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: Timestamp) -> SimDuration {
        SimDuration::from_millis(self.0.saturating_sub(earlier.0))
    }

    /// Timestamp advanced by `d`, saturating at `u64::MAX`.
    pub fn saturating_add(self, d: SimDuration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl Add<SimDuration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: SimDuration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for Timestamp {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = SimDuration;

    fn sub(self, rhs: Timestamp) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of virtual time, in milliseconds.
///
/// Used for the paper's tunables: the temporal-proximity threshold δ
/// (2 000 ms in the prototype), the shared-memory fault wait list
/// (500 ms), and the clickjacking visibility threshold.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Length in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in (truncated) whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A shared, monotonically increasing virtual clock.
///
/// `Clock` is a cheap handle (`Arc` internally); every component of the
/// simulation holds a clone and reads the same instant. Only harness code
/// advances it.
///
/// ```
/// use overhaul_sim::{Clock, SimDuration, Timestamp};
///
/// let clock = Clock::new();
/// let view = clock.clone();
/// clock.advance(SimDuration::from_secs(2));
/// assert_eq!(view.now(), Timestamp::from_millis(2000));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now_ms: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock at [`Timestamp::ZERO`].
    pub fn new() -> Self {
        Clock::default()
    }

    /// Creates a clock already advanced to `start`.
    pub fn starting_at(start: Timestamp) -> Self {
        let clock = Clock::new();
        clock.now_ms.store(start.as_millis(), Ordering::SeqCst);
        clock
    }

    /// The current virtual instant.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.now_ms.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> Timestamp {
        Timestamp(self.now_ms.fetch_add(d.as_millis(), Ordering::SeqCst) + d.as_millis())
    }

    /// Returns `true` if this handle and `other` observe the same underlying
    /// clock (not merely the same instant).
    pub fn same_clock(&self, other: &Clock) -> bool {
        Arc::ptr_eq(&self.now_ms, &other.now_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_round_trips() {
        let t = Timestamp::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_millis(), 15);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = Timestamp::from_millis(5);
        let late = Timestamp::from_millis(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(4));
    }

    #[test]
    fn duration_seconds_conversion() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_millis(2500).as_secs(), 2);
    }

    #[test]
    fn clock_handles_share_time() {
        let clock = Clock::new();
        let other = clock.clone();
        clock.advance(SimDuration::from_millis(42));
        assert_eq!(other.now(), Timestamp::from_millis(42));
        assert!(clock.same_clock(&other));
        assert!(!clock.same_clock(&Clock::new()));
    }

    #[test]
    fn clock_starting_at_offset() {
        let clock = Clock::starting_at(Timestamp::from_millis(100));
        assert_eq!(clock.now(), Timestamp::from_millis(100));
    }

    #[test]
    fn advance_returns_new_now() {
        let clock = Clock::new();
        let t = clock.advance(SimDuration::from_millis(7));
        assert_eq!(t, clock.now());
    }

    #[test]
    fn timestamp_display_is_informative() {
        assert_eq!(Timestamp::from_millis(3).to_string(), "t+3ms");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3ms");
    }
}
