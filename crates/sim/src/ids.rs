//! Strongly typed identifiers shared across the simulated OS stack.
//!
//! The kernel simulator, the display-manager simulator, and the Overhaul
//! policy layer all refer to processes by [`Pid`]. Newtypes keep a `Pid`
//! from being confused with a file descriptor or a window id at compile
//! time (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A process identifier in the simulated kernel.
///
/// The display manager labels interaction notifications with the `Pid` of
/// the X client that received the event; the kernel's permission monitor
/// stores the interaction timestamp in that process's task structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(u32);

impl Pid {
    /// The init process of the simulated system.
    pub const INIT: Pid = Pid(1);

    /// Creates a `Pid` from its raw numeric value.
    pub const fn from_raw(raw: u32) -> Self {
        Pid(raw)
    }

    /// The raw numeric value.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// A user identifier in the simulated kernel.
///
/// Overhaul layers on top of — it does not replace — classic UNIX
/// user-based access control, so device nodes and files still carry owners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Uid(u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// Creates a `Uid` from its raw numeric value.
    pub const fn from_raw(raw: u32) -> Self {
        Uid(raw)
    }

    /// The raw numeric value.
    pub const fn as_raw(self) -> u32 {
        self.0
    }

    /// Whether this is the superuser.
    pub const fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}

/// A per-process file descriptor in the simulated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fd(u32);

impl Fd {
    /// Creates an `Fd` from its raw numeric value.
    pub const fn from_raw(raw: u32) -> Self {
        Fd(raw)
    }

    /// The raw numeric value.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_round_trips_and_displays() {
        let pid = Pid::from_raw(42);
        assert_eq!(pid.as_raw(), 42);
        assert_eq!(pid.to_string(), "pid:42");
        assert_eq!(Pid::INIT.as_raw(), 1);
    }

    #[test]
    fn uid_root_detection() {
        assert!(Uid::ROOT.is_root());
        assert!(!Uid::from_raw(1000).is_root());
        assert_eq!(Uid::from_raw(1000).to_string(), "uid:1000");
    }

    #[test]
    fn fd_round_trips() {
        let fd = Fd::from_raw(3);
        assert_eq!(fd.as_raw(), 3);
        assert_eq!(fd.to_string(), "fd:3");
    }

    #[test]
    fn ids_are_ordered_for_deterministic_iteration() {
        assert!(Pid::from_raw(1) < Pid::from_raw(2));
        assert!(Fd::from_raw(0) < Fd::from_raw(7));
    }
}
