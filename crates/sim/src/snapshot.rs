//! Versioned binary checkpoint format and canonical state hashing.
//!
//! The checkpoint/restore subsystem (`System::snapshot` / `System::restore`
//! in `overhaul-core`) needs a serialization format that is *byte-stable*:
//! the same simulation state must always encode to the same bytes, because
//! the canonical [`Snapshot::state_hash`] — the value record/replay uses to
//! detect divergence — is a hash of the encoded state section. This module
//! provides that format:
//!
//! * [`Enc`] / [`Dec`] — a little-endian binary writer/reader pair with
//!   explicit error reporting ([`SnapshotError`]), no self-description and
//!   no framing overhead beyond length prefixes.
//! * [`Pack`] — the codec trait. Implementations exist for primitives,
//!   strings, `Option`/`Vec`/`VecDeque`/`BTreeMap`/`BTreeSet`, fixed-size
//!   arrays, and tuples. `HashMap`s are encoded *sorted by key* so the
//!   encoding never depends on hasher iteration order.
//! * `impl_pack!` / `impl_pack_newtype!` — macros deriving field-wise
//!   `Pack` for structs; invoked inside the defining module so private
//!   fields stay private.
//! * [`Snapshot`] — the versioned container: a magic tag, a format version,
//!   a *state* section (hashed; everything replay must reproduce) and an
//!   *aux* section (serialized but unhashed; observability state such as the
//!   trace buffer and the metrics registry).
//! * [`fnv1a64`] — the canonical hash (FNV-1a, 64-bit), chosen because it is
//!   trivially stable across platforms and dependency-free.
//! * [`intern`] — re-leaks strings restored from a snapshot into
//!   `&'static str`, for trace span names whose live form is static.
//!
//! Derived caches (the kernel's verdict cache, netlink dup-suppression
//! sets) are deliberately *not* representable here: restore rebuilds them,
//! so a restore is also a coherence check of every cache rebuild path.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::sync::Mutex;

use crate::ids::{Fd, Pid, Uid};
use crate::time::{SimDuration, Timestamp};

/// Magic tag opening every serialized snapshot (`OVSN`).
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"OVSN";

/// Current snapshot format version. Bumped on any encoding change;
/// [`Snapshot::from_bytes`] rejects versions it does not understand.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Why decoding a snapshot failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before the expected data.
    Truncated,
    /// The input does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The input's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// An enum discriminant or constrained value was out of range.
    BadValue(&'static str),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the last expected field.
    TrailingBytes(usize),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "missing OVSN magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::BadValue(what) => write!(f, "invalid encoded value: {what}"),
            SnapshotError::BadUtf8 => write!(f, "invalid UTF-8 in encoded string"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the last field")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A little-endian binary encoder.
#[derive(Debug, Clone, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Truncates to empty, keeping the allocation. Hot loops (ledger
    /// sealing) reuse one encoder instead of allocating per record.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the written bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes, unframed (the caller writes any length prefix).
    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

/// A little-endian binary decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than `n` bytes remain.
    pub fn take_slice(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] at end of input.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take_slice(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take_slice(4)?;
        Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take_slice(8)?;
        Ok(u64::from_le_bytes(s.try_into().expect("8-byte slice")))
    }

    /// Asserts the input was fully consumed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TrailingBytes`] if any bytes remain.
    pub fn finish(self) -> Result<(), SnapshotError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(SnapshotError::TrailingBytes(n)),
        }
    }
}

/// The snapshot codec: a byte-stable, field-wise binary encoding.
pub trait Pack: Sized {
    /// Appends this value's encoding to `enc`.
    fn pack(&self, enc: &mut Enc);

    /// Decodes one value from `dec`.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] raised by malformed or truncated input.
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError>;
}

impl Pack for u8 {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u8(*self);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        dec.take_u8()
    }
}

impl Pack for u16 {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u32(u32::from(*self));
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        u16::try_from(dec.take_u32()?).map_err(|_| SnapshotError::BadValue("u16"))
    }
}

impl Pack for u32 {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u32(*self);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        dec.take_u32()
    }
}

impl Pack for u64 {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(*self);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        dec.take_u64()
    }
}

impl Pack for usize {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(*self as u64);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        usize::try_from(dec.take_u64()?).map_err(|_| SnapshotError::BadValue("usize"))
    }
}

impl Pack for i32 {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u32(*self as u32);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(dec.take_u32()? as i32)
    }
}

impl Pack for i64 {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(*self as u64);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(dec.take_u64()? as i64)
    }
}

impl Pack for bool {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u8(u8::from(*self));
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        match dec.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::BadValue("bool")),
        }
    }
}

impl Pack for char {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u32(*self as u32);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        char::from_u32(dec.take_u32()?).ok_or(SnapshotError::BadValue("char"))
    }
}

impl Pack for f64 {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(self.to_bits());
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(f64::from_bits(dec.take_u64()?))
    }
}

impl Pack for String {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(self.len() as u64);
        enc.put_slice(self.as_bytes());
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let len = usize::unpack(dec)?;
        let bytes = dec.take_slice(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::BadUtf8)
    }
}

impl<T: Pack> Pack for Option<T> {
    fn pack(&self, enc: &mut Enc) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.pack(enc);
            }
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        match dec.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unpack(dec)?)),
            _ => Err(SnapshotError::BadValue("option tag")),
        }
    }
}

impl<T: Pack> Pack for Vec<T> {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(self.len() as u64);
        for item in self {
            item.pack(enc);
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let len = usize::unpack(dec)?;
        // Guard allocations against corrupt length prefixes: every element
        // encodes to at least one byte.
        if len > dec.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::unpack(dec)?);
        }
        Ok(out)
    }
}

impl<T: Pack> Pack for VecDeque<T> {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(self.len() as u64);
        for item in self {
            item.pack(enc);
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(Vec::<T>::unpack(dec)?.into())
    }
}

impl<K: Pack + Ord, V: Pack> Pack for BTreeMap<K, V> {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(self.len() as u64);
        for (k, v) in self {
            k.pack(enc);
            v.pack(enc);
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let len = usize::unpack(dec)?;
        if len > dec.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::unpack(dec)?;
            let v = V::unpack(dec)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Pack + Ord> Pack for BTreeSet<T> {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(self.len() as u64);
        for item in self {
            item.pack(enc);
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let len = usize::unpack(dec)?;
        if len > dec.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::unpack(dec)?);
        }
        Ok(out)
    }
}

/// `HashMap`s encode *sorted by key*: hasher iteration order must never
/// leak into snapshot bytes (it would break hash stability across runs).
impl<K: Pack + Ord + Eq + Hash, V: Pack> Pack for HashMap<K, V> {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(self.len() as u64);
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        for k in keys {
            k.pack(enc);
            self[k].pack(enc);
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let len = usize::unpack(dec)?;
        if len > dec.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let mut out = HashMap::with_capacity(len);
        for _ in 0..len {
            let k = K::unpack(dec)?;
            let v = V::unpack(dec)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Pack, const N: usize> Pack for [T; N] {
    fn pack(&self, enc: &mut Enc) {
        for item in self {
            item.pack(enc);
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::unpack(dec)?);
        }
        out.try_into()
            .map_err(|_| SnapshotError::BadValue("array length"))
    }
}

impl<A: Pack, B: Pack> Pack for (A, B) {
    fn pack(&self, enc: &mut Enc) {
        self.0.pack(enc);
        self.1.pack(enc);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok((A::unpack(dec)?, B::unpack(dec)?))
    }
}

impl<A: Pack, B: Pack, C: Pack> Pack for (A, B, C) {
    fn pack(&self, enc: &mut Enc) {
        self.0.pack(enc);
        self.1.pack(enc);
        self.2.pack(enc);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok((A::unpack(dec)?, B::unpack(dec)?, C::unpack(dec)?))
    }
}

impl Pack for Timestamp {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(self.as_millis());
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(Timestamp::from_millis(dec.take_u64()?))
    }
}

impl Pack for SimDuration {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(self.as_millis());
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(SimDuration::from_millis(dec.take_u64()?))
    }
}

impl Pack for Pid {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u32(self.as_raw());
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(Pid::from_raw(dec.take_u32()?))
    }
}

impl Pack for Uid {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u32(self.as_raw());
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(Uid::from_raw(dec.take_u32()?))
    }
}

impl Pack for Fd {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u32(self.as_raw());
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(Fd::from_raw(dec.take_u32()?))
    }
}

/// Derives field-wise [`Pack`] for a struct with named fields. Invoke in
/// the module that defines the struct so private fields resolve; fields
/// encode in the listed order, which becomes part of the snapshot format.
#[macro_export]
macro_rules! impl_pack {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::snapshot::Pack for $ty {
            fn pack(&self, enc: &mut $crate::snapshot::Enc) {
                $($crate::snapshot::Pack::pack(&self.$field, enc);)+
            }
            fn unpack(
                dec: &mut $crate::snapshot::Dec<'_>,
            ) -> Result<Self, $crate::snapshot::SnapshotError> {
                $(let $field = $crate::snapshot::Pack::unpack(dec)?;)+
                Ok(Self { $($field),+ })
            }
        }
    };
}

/// Derives [`Pack`] for a single-field tuple struct (newtype). Invoke in
/// the defining module so the `.0` field resolves.
#[macro_export]
macro_rules! impl_pack_newtype {
    ($ty:ty, $inner:ty) => {
        impl $crate::snapshot::Pack for $ty {
            fn pack(&self, enc: &mut $crate::snapshot::Enc) {
                $crate::snapshot::Pack::pack(&self.0, enc);
            }
            fn unpack(
                dec: &mut $crate::snapshot::Dec<'_>,
            ) -> Result<Self, $crate::snapshot::SnapshotError> {
                Ok(Self(<$inner as $crate::snapshot::Pack>::unpack(dec)?))
            }
        }
    };
}

/// A versioned checkpoint of one simulated machine.
///
/// Two sections:
///
/// * **state** — everything record/replay must reproduce byte-for-byte:
///   kernel, display manager, clock, RNG positions, fault-plan schedule.
///   [`Snapshot::state_hash`] hashes exactly this section.
/// * **aux** — observability state that restore carries forward but that is
///   *not* part of the canonical state: the trace buffer prefix and the
///   metrics registry (some histograms observe on derived-cache misses, so
///   they are legitimately not a pure function of the event history after
///   a restore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    version: u32,
    state: Vec<u8>,
    aux: Vec<u8>,
}

impl Snapshot {
    /// Wraps encoded state and aux sections under the current version.
    pub fn new(state: Vec<u8>, aux: Vec<u8>) -> Self {
        Snapshot {
            version: SNAPSHOT_VERSION,
            state,
            aux,
        }
    }

    /// The format version this snapshot was encoded under.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The canonical (hashed) state section.
    pub fn state(&self) -> &[u8] {
        &self.state
    }

    /// The auxiliary (unhashed) section.
    pub fn aux(&self) -> &[u8] {
        &self.aux
    }

    /// The canonical hash of the state section (FNV-1a, 64-bit).
    pub fn state_hash(&self) -> u64 {
        fnv1a64(&self.state)
    }

    /// Total serialized size, including the header and length prefixes.
    pub fn total_bytes(&self) -> usize {
        SNAPSHOT_MAGIC.len() + 4 + 8 + self.state.len() + 8 + self.aux.len()
    }

    /// Serializes the snapshot: magic, version, then both sections
    /// length-prefixed.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.put_slice(&SNAPSHOT_MAGIC);
        enc.put_u32(self.version);
        enc.put_u64(self.state.len() as u64);
        enc.put_slice(&self.state);
        enc.put_u64(self.aux.len() as u64);
        enc.put_slice(&self.aux);
        enc.into_bytes()
    }

    /// Parses a serialized snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::BadMagic`], [`SnapshotError::UnsupportedVersion`],
    /// [`SnapshotError::Truncated`], or [`SnapshotError::TrailingBytes`]
    /// for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut dec = Dec::new(bytes);
        if dec.take_slice(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = dec.take_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let state_len = usize::unpack(&mut dec)?;
        let state = dec.take_slice(state_len)?.to_vec();
        let aux_len = usize::unpack(&mut dec)?;
        let aux = dec.take_slice(aux_len)?.to_vec();
        dec.finish()?;
        Ok(Snapshot {
            version,
            state,
            aux,
        })
    }
}

/// FNV-1a, 64-bit: the canonical state hash. Dependency-free and stable
/// across platforms and runs.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The intern table backing [`intern`]. Bounded in practice: only trace
/// span/field names pass through here, and those come from a fixed set of
/// instrumentation sites.
static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());

/// Returns a `&'static str` equal to `s`, leaking at most one copy per
/// distinct string. Used when restoring trace nodes, whose names are
/// `&'static str` in live form.
pub fn intern(s: &str) -> &'static str {
    let mut table = INTERNED.lock().expect("intern table lock");
    if let Some(&existing) = table.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.insert(s.to_owned(), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Pack + PartialEq + std::fmt::Debug>(value: T) {
        let mut enc = Enc::new();
        value.pack(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = T::unpack(&mut dec).expect("unpack");
        dec.finish().expect("no trailing bytes");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0o755u16);
        roundtrip(7u32);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX as u64);
        roundtrip(-5i32);
        roundtrip(-9i64);
        roundtrip(true);
        roundtrip('δ');
        roundtrip(0.25f64);
        roundtrip(String::from("mic"));
        roundtrip(String::new());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Some(3u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(VecDeque::from(vec![String::from("a"), String::from("b")]));
        roundtrip(BTreeMap::from([(1u32, String::from("x"))]));
        roundtrip(BTreeSet::from([9u64, 4]));
        roundtrip([1u64, 2, 3]);
        roundtrip((1u32, String::from("pair")));
        roundtrip((1u32, 2u64, false));
    }

    #[test]
    fn sim_ids_and_time_roundtrip() {
        roundtrip(Pid::from_raw(42));
        roundtrip(Uid::ROOT);
        roundtrip(Fd::from_raw(3));
        roundtrip(Timestamp::from_millis(1_500));
        roundtrip(SimDuration::from_secs(2));
    }

    #[test]
    fn hashmap_encoding_is_key_sorted() {
        // Same contents inserted in different orders must encode the same.
        let mut a = HashMap::new();
        a.insert(3u64, 30u64);
        a.insert(1u64, 10u64);
        a.insert(2u64, 20u64);
        let mut b = HashMap::new();
        b.insert(2u64, 20u64);
        b.insert(1u64, 10u64);
        b.insert(3u64, 30u64);
        let (mut ea, mut eb) = (Enc::new(), Enc::new());
        a.pack(&mut ea);
        b.pack(&mut eb);
        assert_eq!(ea.bytes(), eb.bytes());
        roundtrip(a);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut enc = Enc::new();
        vec![1u64; 4].pack(&mut enc);
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Dec::new(&bytes[..cut]);
            assert!(Vec::<u64>::unpack(&mut dec).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_length_prefix_is_rejected() {
        let mut enc = Enc::new();
        enc.put_u64(u64::MAX); // absurd element count
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(Vec::<u8>::unpack(&mut dec), Err(SnapshotError::Truncated));
    }

    #[test]
    fn bad_enum_tags_are_rejected() {
        let mut dec = Dec::new(&[7]);
        assert_eq!(bool::unpack(&mut dec), Err(SnapshotError::BadValue("bool")));
        let mut dec = Dec::new(&[9, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(
            Option::<u64>::unpack(&mut dec),
            Err(SnapshotError::BadValue("option tag"))
        );
    }

    #[test]
    fn snapshot_container_roundtrips() {
        let snap = Snapshot::new(vec![1, 2, 3], vec![4, 5]);
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.total_bytes());
        let back = Snapshot::from_bytes(&bytes).expect("parse");
        assert_eq!(back, snap);
        assert_eq!(back.version(), SNAPSHOT_VERSION);
        assert_eq!(back.state_hash(), snap.state_hash());
    }

    #[test]
    fn snapshot_rejects_bad_magic_version_and_trailing() {
        let snap = Snapshot::new(vec![1], vec![]);
        let good = snap.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Snapshot::from_bytes(&bad_magic),
            Err(SnapshotError::BadMagic)
        );

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert_eq!(
            Snapshot::from_bytes(&bad_version),
            Err(SnapshotError::UnsupportedVersion(99))
        );

        let mut trailing = good.clone();
        trailing.push(0);
        assert_eq!(
            Snapshot::from_bytes(&trailing),
            Err(SnapshotError::TrailingBytes(1))
        );

        assert_eq!(
            Snapshot::from_bytes(&good[..good.len() - 1]),
            Err(SnapshotError::Truncated)
        );
    }

    #[test]
    fn state_hash_depends_only_on_state_section() {
        let a = Snapshot::new(vec![1, 2, 3], vec![9, 9]);
        let b = Snapshot::new(vec![1, 2, 3], vec![]);
        let c = Snapshot::new(vec![1, 2, 4], vec![9, 9]);
        assert_eq!(a.state_hash(), b.state_hash());
        assert_ne!(a.state_hash(), c.state_hash());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn intern_deduplicates_and_preserves_content() {
        let a = intern("kernel.decide.test-intern");
        let b = intern("kernel.decide.test-intern");
        assert_eq!(a, "kernel.decide.test-intern");
        assert!(std::ptr::eq(a, b), "same leaked allocation");
    }

    #[test]
    fn impl_pack_macro_derives_fieldwise_codec() {
        #[derive(Debug, PartialEq)]
        struct Probe {
            a: u64,
            b: String,
            c: Option<bool>,
        }
        impl_pack!(Probe { a, b, c });

        #[derive(Debug, PartialEq)]
        struct Wrapped(u32);
        impl_pack_newtype!(Wrapped, u32);

        roundtrip(Probe {
            a: 7,
            b: "x".into(),
            c: Some(true),
        });
        roundtrip(Wrapped(9));
    }

    // -----------------------------------------------------------------
    // Adversarial bytes: restore is a parser of untrusted input. Whatever
    // the corruption — bit flips, truncation, lying section lengths — the
    // decode path must return an error (or a benign value), never panic.
    // -----------------------------------------------------------------

    /// A value exercising every codec shape: nested collections, strings,
    /// tagged options, floats, chars, maps with structured values.
    type Nested = (
        (Vec<String>, BTreeMap<u32, Vec<u64>>),
        (Option<(bool, char, f64)>, VecDeque<i64>),
    );

    fn nested_fixture() -> Nested {
        (
            (
                vec!["mic".into(), "cam δ=2000".into(), String::new()],
                BTreeMap::from([(1, vec![9u64, 8, 7]), (200, vec![]), (3, vec![u64::MAX])]),
            ),
            (
                Some((true, 'δ', 0.25)),
                VecDeque::from(vec![-4i64, 0, i64::MAX]),
            ),
        )
    }

    fn nested_snapshot_bytes() -> Vec<u8> {
        let mut enc = Enc::new();
        nested_fixture().pack(&mut enc);
        Snapshot::new(enc.into_bytes(), vec![0xAA, 0xBB]).to_bytes()
    }

    /// Full decode pipeline on arbitrary bytes; returns instead of
    /// panicking, or the calling test fails.
    fn decode_all(bytes: &[u8]) -> Result<Nested, SnapshotError> {
        let snap = Snapshot::from_bytes(bytes)?;
        let mut dec = Dec::new(snap.state());
        let value = Nested::unpack(&mut dec)?;
        dec.finish()?;
        Ok(value)
    }

    #[test]
    fn every_single_bit_flip_decodes_without_panic() {
        // Exhaustive over the whole container encoding: each flipped bit
        // either still parses (flips inside string payloads or hash-free
        // aux bytes are benign) or errors cleanly.
        let good = nested_snapshot_bytes();
        assert!(decode_all(&good).is_ok());
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut evil = good.clone();
                evil[byte] ^= 1 << bit;
                let outcome = std::panic::catch_unwind(|| decode_all(&evil).is_ok());
                assert!(
                    outcome.is_ok(),
                    "decode panicked with bit {bit} of byte {byte} flipped"
                );
            }
        }
    }

    #[test]
    fn every_truncation_point_is_an_error_not_a_panic() {
        let good = nested_snapshot_bytes();
        for cut in 0..good.len() {
            let outcome = std::panic::catch_unwind(|| decode_all(&good[..cut]));
            match outcome {
                Ok(result) => assert!(result.is_err(), "truncation at {cut} accepted"),
                Err(_) => panic!("decode panicked on truncation at {cut}"),
            }
        }
    }

    #[test]
    fn random_multi_bit_corruption_never_panics() {
        // Seeded fuzz sweep: 1–16 simultaneous bit flips per round. Rounds
        // are deterministic (SimRng), so any failure is a stable repro.
        let good = nested_snapshot_bytes();
        for round in 0..2_000u64 {
            let mut rng = crate::rng::SimRng::stream(0x5eed, round);
            let mut evil = good.clone();
            let flips = rng.range(1, 17);
            for _ in 0..flips {
                let byte = rng.range(0, evil.len() as u64) as usize;
                let bit = rng.range(0, 8) as u32;
                evil[byte] ^= 1 << bit;
            }
            let outcome = std::panic::catch_unwind(|| decode_all(&evil).is_ok());
            assert!(outcome.is_ok(), "decode panicked in fuzz round {round}");
        }
    }

    #[test]
    fn section_length_lies_are_rejected() {
        let good = nested_snapshot_bytes();
        let state_len_at = SNAPSHOT_MAGIC.len() + 4;

        // State section claims more bytes than the buffer holds.
        let mut evil = good.clone();
        evil[state_len_at..state_len_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(Snapshot::from_bytes(&evil), Err(SnapshotError::Truncated));

        // State section claims slightly more than it has: the aux length
        // field is then read out of stolen bytes — framing must still fail,
        // not panic.
        let mut evil = good.clone();
        let real_len = u64::from_le_bytes(evil[state_len_at..state_len_at + 8].try_into().unwrap());
        evil[state_len_at..state_len_at + 8].copy_from_slice(&(real_len + 3).to_le_bytes());
        assert!(Snapshot::from_bytes(&evil).is_err());

        // State section claims zero bytes: everything shifts, trailing
        // bytes remain. Must be a clean error.
        let mut evil = good.clone();
        evil[state_len_at..state_len_at + 8].copy_from_slice(&0u64.to_le_bytes());
        assert!(Snapshot::from_bytes(&evil).is_err());

        // A length lie *inside* the state section: first field is the
        // Vec<String> count. Inflate it.
        let snap = Snapshot::from_bytes(&good).unwrap();
        let mut state = snap.state().to_vec();
        state[..8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let mut dec = Dec::new(&state);
        assert_eq!(Nested::unpack(&mut dec), Err(SnapshotError::Truncated));
    }

    #[test]
    fn corrupt_state_flips_the_canonical_hash() {
        // Corruption that *does* parse must still be caught one layer up:
        // the canonical hash over the state section moves.
        let good = nested_snapshot_bytes();
        let snap = Snapshot::from_bytes(&good).unwrap();
        let mut state = snap.state().to_vec();
        let original_hash = snap.state_hash();
        *state.last_mut().unwrap() ^= 0x01;
        let tampered = Snapshot::new(state, snap.aux().to_vec());
        assert_ne!(tampered.state_hash(), original_hash);
    }
}
