//! The authoritative, hash-chained history.
//!
//! The paper's evaluation (§V-C/§V-D) rests on inspecting Overhaul's
//! logs. Earlier revisions of this reproduction kept three parallel,
//! mutually unverifiable histories — the free-form [`AuditLog`], the
//! structured decision traces, and the replay event log. This module
//! unifies the first two behind one **append-only, totally ordered,
//! hash-chained ledger**:
//!
//! * Every control-plane observable — config changes, verdicts, channel
//!   state transitions, device-map updates, interaction notifications and
//!   propagations, ptrace/selection hardening — is appended as a typed
//!   [`LedgerEntry`] carrying an optional structured [`Effect`].
//! * Each appended entry is sealed into a [`SealedEntry`] with a monotone
//!   sequence number and a running FNV-1a chain hash over
//!   `(previous chain, seq, entry)`. [`Ledger::verify_chain`] re-derives
//!   the chain and reports any tamper as a typed [`LedgerError`] — a
//!   single flipped bit anywhere in the retained history changes some
//!   entry's encoding, so its recomputed seal (or a successor's) stops
//!   matching the stored one.
//! * The legacy [`AuditLog`] survives as a **rendered projection**,
//!   materialized at append time (entries marked `silent` carry structured
//!   effects only and do not project), so every existing log-inspecting
//!   test and the procfs STATS page read exactly what they always read.
//! * Control-plane state is a **deterministic reduction** of the ledger:
//!   [`Ledger::reduce`] folds the effects into a [`ControlPlane`] whose
//!   [`ControlPlane::state_hash`] must equal the live system's — from
//!   boot, and from any restored mid-run snapshot.
//!
//! Measurement harnesses may [`Ledger::clear`] retained entries; the
//! chain head and sequence numbers stay monotone across clears (the
//! base head seals the discarded prefix), so verification of the
//! retained suffix still works and appends never restart the chain.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::audit::{AuditCategory, AuditLog};
use crate::ids::Pid;
use crate::snapshot::{fnv1a64, Dec, Enc, Pack, Snapshot, SnapshotError};
use crate::time::Timestamp;

/// Chain hash of the empty history (the FNV-1a 64-bit offset basis, i.e.
/// `fnv1a64(&[])`), so a freshly created ledger and a verifier agree on
/// the genesis head without exchanging anything.
pub const GENESIS_HEAD: u64 = 0xcbf2_9ce4_8422_2325;

/// Which control-plane configuration knob a [`Effect::Config`] entry set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigKey {
    /// `KernelConfig::overhaul_enabled`.
    OverhaulEnabled,
    /// `KernelConfig::ptrace_hardening`.
    PtraceHardening,
    /// The kernel's `channel_required` switch.
    ChannelRequired,
    /// The monitor's temporal-proximity threshold δ, in milliseconds.
    DeltaMs,
    /// The monitor's grant-all (measurement) mode.
    GrantAll,
}

/// Channel health as recorded in the ledger (mirrors the kernel's
/// `ChannelState` without depending on the kernel crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelTag {
    /// Authenticated and healthy.
    Up,
    /// Healthy but recently lossy/reordered.
    Degraded,
    /// No authenticated display channel.
    #[default]
    Down,
}

/// Which policy rule produced a verdict (mirrors the kernel's
/// `DecisionTrace` variants; labels match `DecisionTrace::kind_str`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// Interaction within δ.
    WithinThreshold,
    /// Grant-all measurement mode.
    GrantAll,
    /// No interaction on record.
    NoInteraction,
    /// Interaction on record but older than δ.
    Stale,
    /// Permissions frozen by ptrace hardening.
    PermissionsFrozen,
    /// Channel required but down: fail closed.
    ChannelDown,
    /// Device quarantined pending a helper update.
    Quarantined,
    /// Unknown requesting process.
    UnknownProcess,
}

impl RuleKind {
    /// Stable label (identical to the decision trace's `kind_str`).
    pub fn label(&self) -> &'static str {
        match self {
            RuleKind::WithinThreshold => "within-threshold",
            RuleKind::GrantAll => "grant-all",
            RuleKind::NoInteraction => "no-interaction",
            RuleKind::Stale => "stale",
            RuleKind::PermissionsFrozen => "permissions-frozen",
            RuleKind::ChannelDown => "channel-down",
            RuleKind::Quarantined => "quarantined",
            RuleKind::UnknownProcess => "unknown-process",
        }
    }
}

/// The structured, foldable payload of a ledger entry: what the entry
/// *did* to control-plane state (or, for verdicts, what the policy engine
/// concluded). Entries that are purely informational carry no effect.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// A configuration knob was set.
    Config {
        /// Which knob.
        key: ConfigKey,
        /// New value (booleans as 0/1).
        value: u64,
    },
    /// The display channel transitioned.
    Channel {
        /// The state it transitioned to.
        to: ChannelTag,
    },
    /// A device node was attached and mapped (boot/udev attach).
    DeviceAttached {
        /// Device node path.
        path: String,
        /// Raw device id.
        device: u32,
    },
    /// The trusted helper mapped a path (lifting any quarantine).
    DeviceInserted {
        /// Device node path.
        path: String,
        /// Raw device id.
        device: u32,
    },
    /// The trusted helper moved a mapping (lifting any quarantine).
    /// Renames of unknown paths fold to nothing, mirroring the map.
    DeviceRenamed {
        /// Previous path.
        old: String,
        /// New path.
        new: String,
    },
    /// A path was revoked and its device quarantined (fail closed).
    DeviceRevoked {
        /// The revoked path.
        path: String,
    },
    /// A path mapping was removed without quarantine.
    DeviceRemoved {
        /// The removed path.
        path: String,
    },
    /// A permission verdict (the structured mirror of the decision
    /// trace, `Copy`-sized so the decide hot path never allocates).
    Verdict {
        /// Whether access was granted.
        granted: bool,
        /// Raw resource-op tag (kernel `ResourceOp` discriminant).
        op: u8,
        /// Which policy rule fired.
        rule: RuleKind,
    },
}

impl Effect {
    /// A stable small-integer class tag for effect histograms (the
    /// fleet's per-class entry counts). [`Effect::NO_EFFECT_CLASS`] is
    /// reserved for entries that carry no effect.
    pub fn class(&self) -> u8 {
        match self {
            Effect::Config { .. } => 0,
            Effect::Channel { .. } => 1,
            Effect::DeviceAttached { .. } => 2,
            Effect::DeviceInserted { .. } => 3,
            Effect::DeviceRenamed { .. } => 4,
            Effect::DeviceRevoked { .. } => 5,
            Effect::DeviceRemoved { .. } => 6,
            Effect::Verdict { .. } => 7,
        }
    }

    /// Class tag counted for entries with no effect payload.
    pub const NO_EFFECT_CLASS: u8 = 255;

    /// Human label for a class tag from [`Effect::class`].
    pub fn class_label(class: u8) -> &'static str {
        match class {
            0 => "config",
            1 => "channel",
            2 => "device_attached",
            3 => "device_inserted",
            4 => "device_renamed",
            5 => "device_revoked",
            6 => "device_removed",
            7 => "verdict",
            Effect::NO_EFFECT_CLASS => "none",
            _ => "unknown",
        }
    }
}

/// One typed history entry, before sealing.
///
/// `category`/`pid`/`detail` are exactly what the legacy audit row
/// carried; `effect` is the structured payload the reduction folds; a
/// `silent` entry is ledger-only (no audit projection) — used for
/// control-plane mutations that were historically unaudited, so the
/// rendered log stays byte-identical to what tests expect.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Virtual time of the event.
    pub at: Timestamp,
    /// The process the entry concerns, if any.
    pub pid: Option<Pid>,
    /// Legacy audit category (also the projection's category).
    pub category: AuditCategory,
    /// Rendered detail. Hot-path appends use `Cow::Borrowed` statics so
    /// sealing and projection are allocation-free.
    pub detail: Cow<'static, str>,
    /// Structured payload, if the entry mutates control-plane state or
    /// records a verdict.
    pub effect: Option<Effect>,
    /// Whether the entry is excluded from the audit projection.
    pub silent: bool,
}

impl LedgerEntry {
    /// A projected (non-silent) entry with no structured effect — the
    /// shape of a legacy audit row.
    #[inline]
    pub fn event(
        at: Timestamp,
        category: AuditCategory,
        pid: Option<Pid>,
        detail: impl Into<Cow<'static, str>>,
    ) -> Self {
        LedgerEntry {
            at,
            pid,
            category,
            detail: detail.into(),
            effect: None,
            silent: false,
        }
    }

    /// Attaches a structured effect.
    #[inline]
    pub fn with_effect(mut self, effect: Effect) -> Self {
        self.effect = Some(effect);
        self
    }

    /// A silent entry: structured effect only, no audit projection.
    pub fn silent(at: Timestamp, effect: Effect) -> Self {
        LedgerEntry {
            at,
            pid: None,
            category: AuditCategory::Info,
            detail: Cow::Borrowed(""),
            effect: Some(effect),
            silent: true,
        }
    }
}

/// An entry sealed into the chain: its sequence number and the chain
/// hash covering the whole history up to and including it.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedEntry {
    /// Monotone position in the total order (never reused, survives
    /// harness clears).
    pub seq: u64,
    /// Running chain hash after this entry.
    pub chain: u64,
    /// The entry itself.
    pub entry: LedgerEntry,
}

/// A typed chain-verification failure. Never a panic: adversarial inputs
/// land here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerError {
    /// An entry's sequence number is not `base_seq + index`: the history
    /// was reordered, spliced, or truncated in the middle.
    SeqGap {
        /// The sequence number expected at this position.
        expected: u64,
        /// The sequence number found.
        found: u64,
    },
    /// An entry's stored seal does not match the recomputed chain hash.
    ChainMismatch {
        /// Sequence number of the offending entry.
        seq: u64,
        /// The recomputed seal.
        expected: u64,
        /// The stored seal.
        found: u64,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::SeqGap { expected, found } => {
                write!(f, "ledger sequence gap: expected {expected}, found {found}")
            }
            LedgerError::ChainMismatch {
                seq,
                expected,
                found,
            } => write!(
                f,
                "ledger chain mismatch at seq {seq}: recomputed {expected:#018x}, stored {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

/// Seals one entry onto the chain: FNV-1a over the packed
/// `(prev, seq, entry)`, staged through `scratch` (cleared first) so hot
/// append loops reuse one buffer instead of allocating per record. The
/// sealed bytes — and so every chain head — are identical to packing into
/// a fresh encoder.
#[inline]
fn seal(scratch: &mut Enc, prev: u64, seq: u64, entry: &LedgerEntry) -> u64 {
    scratch.clear();
    prev.pack(scratch);
    seq.pack(scratch);
    entry.pack(scratch);
    fnv1a64(scratch.bytes())
}

/// The append-only hash-chained history, plus its materialized audit
/// projection.
///
/// Serialization keeps `seq`/`chain` verbatim (they are *evidence*, not
/// derivable hints), so corruption introduced between a seal and a later
/// verify is detected rather than silently re-derived away.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    /// Sequence number of the first retained entry (entries before it
    /// were discarded by a harness clear; their history is summarized by
    /// `base_head`).
    base_seq: u64,
    /// Chain hash sealing everything before the first retained entry
    /// ([`GENESIS_HEAD`] for a never-cleared ledger).
    base_head: u64,
    entries: Vec<SealedEntry>,
    /// The legacy audit view, materialized at append time from non-silent
    /// entries.
    projection: AuditLog,
    /// Reusable seal staging buffer (never serialized or compared; purely
    /// an allocation-avoidance cache for the append hot path).
    scratch: Enc,
}

impl Ledger {
    /// An empty ledger at the genesis head.
    pub fn new() -> Self {
        Ledger {
            base_seq: 0,
            base_head: GENESIS_HEAD,
            entries: Vec::new(),
            projection: AuditLog::new(),
            scratch: Enc::new(),
        }
    }

    /// Appends an entry, sealing it onto the chain and (unless silent)
    /// projecting it into the audit view. Returns the new chain head.
    #[inline]
    pub fn append(&mut self, entry: LedgerEntry) -> u64 {
        let seq = self.next_seq();
        let prev = self.head();
        let chain = seal(&mut self.scratch, prev, seq, &entry);
        if !entry.silent {
            self.projection
                .record(entry.at, entry.category, entry.pid, entry.detail.clone());
        }
        self.entries.push(SealedEntry { seq, chain, entry });
        chain
    }

    /// The current chain head (covers every entry ever appended,
    /// including ones discarded by [`Ledger::clear`]).
    #[inline]
    pub fn head(&self) -> u64 {
        self.entries.last().map_or(self.base_head, |e| e.chain)
    }

    /// Reassembles a ledger from untrusted parts — e.g. a history shipped
    /// by another machine, or a tampering corpus under test. Seals and
    /// sequence numbers are taken verbatim and the audit projection is
    /// rebuilt from the non-silent entries; run [`Ledger::verify_chain`]
    /// before trusting the result.
    pub fn from_parts(base_seq: u64, base_head: u64, entries: Vec<SealedEntry>) -> Ledger {
        let mut projection = AuditLog::new();
        for sealed in &entries {
            if !sealed.entry.silent {
                projection.record(
                    sealed.entry.at,
                    sealed.entry.category,
                    sealed.entry.pid,
                    sealed.entry.detail.clone(),
                );
            }
        }
        Ledger {
            base_seq,
            base_head,
            entries,
            projection,
            scratch: Enc::new(),
        }
    }

    /// The next sequence number an append would take (equals the count
    /// of entries ever appended).
    pub fn next_seq(&self) -> u64 {
        self.base_seq + self.entries.len() as u64
    }

    /// Sequence number of the first retained entry.
    pub fn base_seq(&self) -> u64 {
        self.base_seq
    }

    /// Chain hash sealing the discarded prefix ([`GENESIS_HEAD`] for a
    /// never-cleared ledger).
    pub fn base_head(&self) -> u64 {
        self.base_head
    }

    /// The retained sealed entries.
    pub fn entries(&self) -> &[SealedEntry] {
        &self.entries
    }

    /// The legacy audit view of the retained history.
    pub fn audit(&self) -> &AuditLog {
        &self.projection
    }

    /// Discards retained entries and the projection, keeping the chain
    /// head and sequence numbering monotone (measurement harnesses call
    /// this so unbounded history growth cannot distort long loops).
    pub fn clear(&mut self) {
        self.base_seq = self.next_seq();
        self.base_head = self.head();
        self.entries.clear();
        self.projection.clear();
    }

    /// Re-derives the chain over the retained entries and checks every
    /// stored seal and sequence number.
    ///
    /// # Errors
    ///
    /// [`LedgerError::SeqGap`] on reordered/spliced/renumbered history,
    /// [`LedgerError::ChainMismatch`] on any payload or seal corruption.
    pub fn verify_chain(&self) -> Result<(), LedgerError> {
        let mut prev = self.base_head;
        let mut scratch = Enc::new();
        for (i, sealed) in self.entries.iter().enumerate() {
            let expected_seq = self.base_seq + i as u64;
            if sealed.seq != expected_seq {
                return Err(LedgerError::SeqGap {
                    expected: expected_seq,
                    found: sealed.seq,
                });
            }
            let expected = seal(&mut scratch, prev, sealed.seq, &sealed.entry);
            if sealed.chain != expected {
                return Err(LedgerError::ChainMismatch {
                    seq: sealed.seq,
                    expected,
                    found: sealed.chain,
                });
            }
            prev = sealed.chain;
        }
        Ok(())
    }

    /// Folds the retained entries' effects into `seed` (boot defaults for
    /// a full history, or a restored control plane for a suffix) and
    /// returns the reduced control-plane state.
    pub fn reduce(&self, mut seed: ControlPlane) -> ControlPlane {
        for sealed in &self.entries {
            if let Some(effect) = &sealed.entry.effect {
                seed.apply(effect);
            }
        }
        seed
    }

    /// Serializes the ledger into its own versioned container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.pack(&mut enc);
        Snapshot::new(enc.into_bytes(), Vec::new()).to_bytes()
    }

    /// Parses a ledger serialized by [`Ledger::to_bytes`]. Seals and
    /// sequence numbers are restored verbatim — run
    /// [`Ledger::verify_chain`] to validate them.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from a truncated or corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Ledger, SnapshotError> {
        let container = Snapshot::from_bytes(bytes)?;
        let mut dec = Dec::new(container.state());
        let ledger = Pack::unpack(&mut dec)?;
        dec.finish()?;
        Ok(ledger)
    }
}

/// The control-plane state that is, by construction, a pure fold of the
/// ledger: policy switches, the monitor's δ/grant-all, channel health,
/// and the device map (paths + quarantine set).
///
/// `Default` is the boot state of a machine that has recorded nothing:
/// everything off, channel down, no devices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControlPlane {
    /// Whether Overhaul mediation is enabled.
    pub overhaul_enabled: bool,
    /// Whether ptrace hardening is enabled.
    pub ptrace_hardening: bool,
    /// Whether mediation requires a live display channel.
    pub channel_required: bool,
    /// The monitor's temporal-proximity threshold δ, in milliseconds.
    pub delta_ms: u64,
    /// The monitor's grant-all (measurement) mode.
    pub grant_all: bool,
    /// Display-channel health.
    pub channel: ChannelTag,
    /// Sensitive-device map: path → raw device id.
    pub devices_by_path: BTreeMap<String, u32>,
    /// Devices quarantined pending a helper update.
    pub quarantined: BTreeSet<u32>,
}

impl ControlPlane {
    /// Applies one effect, mirroring the kernel's own mutation semantics
    /// (notably: revoking an unknown path quarantines nothing, renaming
    /// an unknown path is ignored, and any insert lifts quarantine).
    pub fn apply(&mut self, effect: &Effect) {
        match effect {
            Effect::Config { key, value } => match key {
                ConfigKey::OverhaulEnabled => self.overhaul_enabled = *value != 0,
                ConfigKey::PtraceHardening => self.ptrace_hardening = *value != 0,
                ConfigKey::ChannelRequired => self.channel_required = *value != 0,
                ConfigKey::DeltaMs => self.delta_ms = *value,
                ConfigKey::GrantAll => self.grant_all = *value != 0,
            },
            Effect::Channel { to } => self.channel = *to,
            Effect::DeviceAttached { path, device } | Effect::DeviceInserted { path, device } => {
                self.quarantined.remove(device);
                self.devices_by_path.insert(path.clone(), *device);
            }
            Effect::DeviceRenamed { old, new } => {
                if let Some(device) = self.devices_by_path.remove(old) {
                    self.quarantined.remove(&device);
                    self.devices_by_path.insert(new.clone(), device);
                }
            }
            Effect::DeviceRevoked { path } => {
                if let Some(device) = self.devices_by_path.remove(path) {
                    self.quarantined.insert(device);
                }
            }
            Effect::DeviceRemoved { path } => {
                self.devices_by_path.remove(path);
            }
            Effect::Verdict { .. } => {}
        }
    }

    /// FNV-1a hash of the packed control plane — the byte-identity the
    /// state-as-reduction acceptance check compares.
    pub fn state_hash(&self) -> u64 {
        let mut enc = Enc::new();
        self.pack(&mut enc);
        fnv1a64(enc.bytes())
    }

    /// Field-by-field divergence between two control planes, one line per
    /// differing field (`field: self_value != other_value`). Empty when
    /// the planes agree — the fleet's ledger-diff view uses this to
    /// localize *where* two shards' control planes drifted apart.
    pub fn diff(&self, other: &ControlPlane) -> Vec<String> {
        let mut out = Vec::new();
        if self.overhaul_enabled != other.overhaul_enabled {
            out.push(format!(
                "overhaul_enabled: {} != {}",
                self.overhaul_enabled, other.overhaul_enabled
            ));
        }
        if self.ptrace_hardening != other.ptrace_hardening {
            out.push(format!(
                "ptrace_hardening: {} != {}",
                self.ptrace_hardening, other.ptrace_hardening
            ));
        }
        if self.channel_required != other.channel_required {
            out.push(format!(
                "channel_required: {} != {}",
                self.channel_required, other.channel_required
            ));
        }
        if self.delta_ms != other.delta_ms {
            out.push(format!("delta_ms: {} != {}", self.delta_ms, other.delta_ms));
        }
        if self.grant_all != other.grant_all {
            out.push(format!(
                "grant_all: {} != {}",
                self.grant_all, other.grant_all
            ));
        }
        if self.channel != other.channel {
            out.push(format!(
                "channel: {:?} != {:?}",
                self.channel, other.channel
            ));
        }
        if self.devices_by_path != other.devices_by_path {
            let mine: Vec<&String> = self
                .devices_by_path
                .keys()
                .filter(|k| self.devices_by_path.get(*k) != other.devices_by_path.get(*k))
                .collect();
            let theirs: Vec<&String> = other
                .devices_by_path
                .keys()
                .filter(|k| !self.devices_by_path.contains_key(*k))
                .collect();
            out.push(format!(
                "devices_by_path: {} vs {} entries (changed here: {mine:?}, only there: {theirs:?})",
                self.devices_by_path.len(),
                other.devices_by_path.len()
            ));
        }
        if self.quarantined != other.quarantined {
            out.push(format!(
                "quarantined: {:?} != {:?}",
                self.quarantined, other.quarantined
            ));
        }
        out
    }
}

/// A compact, serializable digest of one [`Ledger`]: chain anchors, entry
/// and effect-class counts, and the control plane reduced from the
/// retained history. This is what shards ship to the fleet for the
/// cross-shard ledger aggregation/diff view — small enough to collect
/// from hundreds of shards, rich enough to localize a divergence.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LedgerSummary {
    /// Current chain head.
    pub head: u64,
    /// Sequence number of the first retained entry.
    pub base_seq: u64,
    /// Chain hash sealing the discarded prefix.
    pub base_head: u64,
    /// The next sequence number an append would take.
    pub next_seq: u64,
    /// Retained entry count.
    pub entries: u64,
    /// Effect-class tag ([`Effect::class`]) → count over retained
    /// entries; entries without an effect count under
    /// [`Effect::NO_EFFECT_CLASS`].
    pub effects: BTreeMap<u8, u64>,
    /// The control plane reduced from the retained history (boot state
    /// seed), i.e. `ledger.reduce(ControlPlane::default())`.
    pub plane: ControlPlane,
}

impl LedgerSummary {
    /// Digests a ledger.
    pub fn of(ledger: &Ledger) -> LedgerSummary {
        let mut effects: BTreeMap<u8, u64> = BTreeMap::new();
        for sealed in ledger.entries() {
            let class = sealed
                .entry
                .effect
                .as_ref()
                .map_or(Effect::NO_EFFECT_CLASS, Effect::class);
            *effects.entry(class).or_insert(0) += 1;
        }
        LedgerSummary {
            head: ledger.head(),
            base_seq: ledger.base_seq(),
            base_head: ledger.base_head(),
            next_seq: ledger.next_seq(),
            entries: ledger.entries().len() as u64,
            effects,
            plane: ledger.reduce(ControlPlane::default()),
        }
    }

    /// Renders the digest for humans (`ovq` and the soak report).
    pub fn render(&self) -> String {
        let mut out = format!(
            "head {:016x}  seqs [{}, {})  entries {}\n",
            self.head, self.base_seq, self.next_seq, self.entries
        );
        for (class, count) in &self.effects {
            out.push_str(&format!(
                "  effect {:<16} {count}\n",
                Effect::class_label(*class)
            ));
        }
        out
    }

    /// Localizes the divergence between two shard histories: chain
    /// anchors, per-class entry counts, and the reduced control planes
    /// are compared field by field. Empty when the digests agree.
    pub fn diff(&self, other: &LedgerSummary) -> Vec<String> {
        let mut out = Vec::new();
        if self.head != other.head {
            out.push(format!("head: {:016x} != {:016x}", self.head, other.head));
        }
        if (self.base_seq, self.base_head) != (other.base_seq, other.base_head) {
            out.push(format!(
                "base: seq {} head {:016x} != seq {} head {:016x}",
                self.base_seq, self.base_head, other.base_seq, other.base_head
            ));
        }
        if self.entries != other.entries {
            out.push(format!("entries: {} != {}", self.entries, other.entries));
        }
        let classes: std::collections::BTreeSet<u8> = self
            .effects
            .keys()
            .chain(other.effects.keys())
            .copied()
            .collect();
        for class in classes {
            let a = self.effects.get(&class).copied().unwrap_or(0);
            let b = other.effects.get(&class).copied().unwrap_or(0);
            if a != b {
                out.push(format!("effect {}: {a} != {b}", Effect::class_label(class)));
            }
        }
        for line in self.plane.diff(&other.plane) {
            out.push(format!("plane {line}"));
        }
        out
    }
}

mod pack {
    //! Versioned binary codec for the ledger, reusing the snapshot
    //! machinery. Seals and sequence numbers serialize verbatim so a
    //! decoded ledger still witnesses any corruption of its bytes.

    use super::{
        ChannelTag, ConfigKey, ControlPlane, Effect, Ledger, LedgerEntry, RuleKind, SealedEntry,
    };
    use crate::impl_pack;
    use crate::snapshot::{Dec, Enc, Pack, SnapshotError};

    impl Pack for ConfigKey {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                ConfigKey::OverhaulEnabled => 0,
                ConfigKey::PtraceHardening => 1,
                ConfigKey::ChannelRequired => 2,
                ConfigKey::DeltaMs => 3,
                ConfigKey::GrantAll => 4,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => ConfigKey::OverhaulEnabled,
                1 => ConfigKey::PtraceHardening,
                2 => ConfigKey::ChannelRequired,
                3 => ConfigKey::DeltaMs,
                4 => ConfigKey::GrantAll,
                _ => return Err(SnapshotError::BadValue("config key tag")),
            })
        }
    }

    impl Pack for ChannelTag {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                ChannelTag::Up => 0,
                ChannelTag::Degraded => 1,
                ChannelTag::Down => 2,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => ChannelTag::Up,
                1 => ChannelTag::Degraded,
                2 => ChannelTag::Down,
                _ => return Err(SnapshotError::BadValue("channel tag")),
            })
        }
    }

    impl Pack for RuleKind {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                RuleKind::WithinThreshold => 0,
                RuleKind::GrantAll => 1,
                RuleKind::NoInteraction => 2,
                RuleKind::Stale => 3,
                RuleKind::PermissionsFrozen => 4,
                RuleKind::ChannelDown => 5,
                RuleKind::Quarantined => 6,
                RuleKind::UnknownProcess => 7,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => RuleKind::WithinThreshold,
                1 => RuleKind::GrantAll,
                2 => RuleKind::NoInteraction,
                3 => RuleKind::Stale,
                4 => RuleKind::PermissionsFrozen,
                5 => RuleKind::ChannelDown,
                6 => RuleKind::Quarantined,
                7 => RuleKind::UnknownProcess,
                _ => return Err(SnapshotError::BadValue("rule kind tag")),
            })
        }
    }

    impl Pack for Effect {
        fn pack(&self, enc: &mut Enc) {
            match self {
                Effect::Config { key, value } => {
                    enc.put_u8(0);
                    key.pack(enc);
                    value.pack(enc);
                }
                Effect::Channel { to } => {
                    enc.put_u8(1);
                    to.pack(enc);
                }
                Effect::DeviceAttached { path, device } => {
                    enc.put_u8(2);
                    path.pack(enc);
                    device.pack(enc);
                }
                Effect::DeviceInserted { path, device } => {
                    enc.put_u8(3);
                    path.pack(enc);
                    device.pack(enc);
                }
                Effect::DeviceRenamed { old, new } => {
                    enc.put_u8(4);
                    old.pack(enc);
                    new.pack(enc);
                }
                Effect::DeviceRevoked { path } => {
                    enc.put_u8(5);
                    path.pack(enc);
                }
                Effect::DeviceRemoved { path } => {
                    enc.put_u8(6);
                    path.pack(enc);
                }
                Effect::Verdict { granted, op, rule } => {
                    enc.put_u8(7);
                    granted.pack(enc);
                    enc.put_u8(*op);
                    rule.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => Effect::Config {
                    key: Pack::unpack(dec)?,
                    value: Pack::unpack(dec)?,
                },
                1 => Effect::Channel {
                    to: Pack::unpack(dec)?,
                },
                2 => Effect::DeviceAttached {
                    path: Pack::unpack(dec)?,
                    device: Pack::unpack(dec)?,
                },
                3 => Effect::DeviceInserted {
                    path: Pack::unpack(dec)?,
                    device: Pack::unpack(dec)?,
                },
                4 => Effect::DeviceRenamed {
                    old: Pack::unpack(dec)?,
                    new: Pack::unpack(dec)?,
                },
                5 => Effect::DeviceRevoked {
                    path: Pack::unpack(dec)?,
                },
                6 => Effect::DeviceRemoved {
                    path: Pack::unpack(dec)?,
                },
                7 => Effect::Verdict {
                    granted: Pack::unpack(dec)?,
                    op: dec.take_u8()?,
                    rule: Pack::unpack(dec)?,
                },
                _ => return Err(SnapshotError::BadValue("effect tag")),
            })
        }
    }

    impl_pack!(LedgerEntry {
        at,
        pid,
        category,
        detail,
        effect,
        silent
    });

    impl_pack!(SealedEntry { seq, chain, entry });

    // Hand-written (not `impl_pack!`): the audit projection is *derived*
    // — rebuilt from the entries on decode — so every serialized byte
    // past the container framing is covered by the chain, and a decoded
    // ledger cannot carry a projection its sealed history disagrees with.
    impl Pack for Ledger {
        fn pack(&self, enc: &mut Enc) {
            self.base_seq.pack(enc);
            self.base_head.pack(enc);
            self.entries.pack(enc);
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            let base_seq = Pack::unpack(dec)?;
            let base_head = Pack::unpack(dec)?;
            let entries: Vec<SealedEntry> = Pack::unpack(dec)?;
            Ok(Ledger::from_parts(base_seq, base_head, entries))
        }
    }

    impl_pack!(ControlPlane {
        overhaul_enabled,
        ptrace_hardening,
        channel_required,
        delta_ms,
        grant_all,
        channel,
        devices_by_path,
        quarantined
    });

    impl_pack!(super::LedgerSummary {
        head,
        base_seq,
        base_head,
        next_seq,
        entries,
        effects,
        plane
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ms: u64, detail: &'static str) -> LedgerEntry {
        LedgerEntry::event(
            Timestamp::from_millis(ms),
            AuditCategory::Info,
            None,
            detail,
        )
    }

    fn sample() -> Ledger {
        let mut ledger = Ledger::new();
        ledger.append(LedgerEntry::silent(
            Timestamp::from_millis(0),
            Effect::Config {
                key: ConfigKey::OverhaulEnabled,
                value: 1,
            },
        ));
        ledger.append(
            entry(10, "udev: attached microphone 'mic' at /dev/snd/mic0").with_effect(
                Effect::DeviceAttached {
                    path: "/dev/snd/mic0".into(),
                    device: 7,
                },
            ),
        );
        ledger.append(
            entry(20, "netlink: peer authenticated")
                .with_effect(Effect::Channel { to: ChannelTag::Up }),
        );
        ledger.append(entry(30, "op=mic granted").with_effect(Effect::Verdict {
            granted: true,
            op: 0,
            rule: RuleKind::WithinThreshold,
        }));
        ledger
    }

    #[test]
    fn chain_verifies_and_heads_are_monotone_evidence() {
        let ledger = sample();
        assert!(ledger.verify_chain().is_ok());
        assert_ne!(ledger.head(), GENESIS_HEAD);
        assert_eq!(ledger.next_seq(), 4);
        // Same history, same head; one more entry, different head.
        assert_eq!(sample().head(), ledger.head());
        let mut longer = sample();
        longer.append(entry(40, "marker"));
        assert_ne!(longer.head(), ledger.head());
    }

    #[test]
    fn projection_skips_silent_entries() {
        let ledger = sample();
        assert_eq!(ledger.entries().len(), 4);
        assert_eq!(
            ledger.audit().len(),
            3,
            "silent config entry must not project"
        );
        assert_eq!(ledger.audit().matching("op=mic granted").count(), 1);
    }

    #[test]
    fn tampered_payload_seal_or_seq_fails_typed() {
        // Payload tamper.
        let mut ledger = sample();
        ledger.entries[1].entry.detail = Cow::Borrowed("forged");
        assert!(matches!(
            ledger.verify_chain(),
            Err(LedgerError::ChainMismatch { seq: 1, .. })
        ));
        // Seal tamper.
        let mut ledger = sample();
        ledger.entries[2].chain ^= 1;
        assert!(matches!(
            ledger.verify_chain(),
            Err(LedgerError::ChainMismatch { seq: 2, .. })
        ));
        // Reorder.
        let mut ledger = sample();
        ledger.entries.swap(1, 2);
        assert!(matches!(
            ledger.verify_chain(),
            Err(LedgerError::SeqGap { .. })
        ));
        // Drop in the middle.
        let mut ledger = sample();
        ledger.entries.remove(1);
        assert!(ledger.verify_chain().is_err());
    }

    #[test]
    fn clear_keeps_chain_monotone_and_suffix_verifiable() {
        let mut ledger = sample();
        let head = ledger.head();
        ledger.clear();
        assert_eq!(ledger.head(), head, "clear must not rewind the chain");
        assert_eq!(ledger.next_seq(), 4);
        assert!(ledger.audit().is_empty());
        ledger.append(entry(50, "after clear"));
        assert!(ledger.verify_chain().is_ok());
        assert_eq!(ledger.entries()[0].seq, 4);
    }

    #[test]
    fn round_trip_preserves_chain_and_projection() {
        let ledger = sample();
        let decoded = Ledger::from_bytes(&ledger.to_bytes()).expect("decode");
        assert_eq!(decoded.head(), ledger.head());
        assert_eq!(decoded.next_seq(), ledger.next_seq());
        assert_eq!(decoded.entries(), ledger.entries());
        assert_eq!(decoded.audit().events(), ledger.audit().events());
        assert!(decoded.verify_chain().is_ok());
    }

    #[test]
    fn every_single_bit_flip_is_detected_or_rejected() {
        let ledger = sample();
        let bytes = ledger.to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut fuzzed = bytes.clone();
                fuzzed[i] ^= 1 << bit;
                // Parsed: the decoded history must fail chain
                // verification — a single flipped bit can never yield a
                // different-but-valid chain.
                if let Ok(decoded) = Ledger::from_bytes(&fuzzed) {
                    assert!(
                        decoded.verify_chain().is_err(),
                        "bit {bit} of byte {i} flipped yet the chain verified"
                    );
                }
            }
        }
    }

    #[test]
    fn reduction_mirrors_device_map_semantics() {
        let mut ledger = Ledger::new();
        let at = Timestamp::from_millis(0);
        ledger.append(LedgerEntry::silent(
            at,
            Effect::DeviceInserted {
                path: "/dev/video0".into(),
                device: 3,
            },
        ));
        ledger.append(LedgerEntry::silent(
            at,
            Effect::DeviceRevoked {
                path: "/dev/video0".into(),
            },
        ));
        let cp = ledger.reduce(ControlPlane::default());
        assert!(cp.devices_by_path.is_empty());
        assert!(cp.quarantined.contains(&3));

        // Re-insert lifts quarantine; rename of unknown path is ignored.
        ledger.append(LedgerEntry::silent(
            at,
            Effect::DeviceInserted {
                path: "/dev/video1".into(),
                device: 3,
            },
        ));
        ledger.append(LedgerEntry::silent(
            at,
            Effect::DeviceRenamed {
                old: "/dev/ghost".into(),
                new: "/dev/real".into(),
            },
        ));
        let cp = ledger.reduce(ControlPlane::default());
        assert!(cp.quarantined.is_empty());
        assert_eq!(cp.devices_by_path.get("/dev/video1"), Some(&3));
        assert!(!cp.devices_by_path.contains_key("/dev/real"));
    }

    #[test]
    fn reduction_is_resumable_from_a_mid_history_seed() {
        let full = sample();
        let from_boot = full.reduce(ControlPlane::default());

        // Split the history: reduce a prefix, seed the suffix with it.
        let mut prefix = Ledger::new();
        let mut suffix = Ledger::new();
        for (i, sealed) in full.entries().iter().enumerate() {
            if i < 2 {
                prefix.append(sealed.entry.clone());
            } else {
                suffix.append(sealed.entry.clone());
            }
        }
        let resumed = suffix.reduce(prefix.reduce(ControlPlane::default()));
        assert_eq!(resumed, from_boot);
        assert_eq!(resumed.state_hash(), from_boot.state_hash());
    }
}
