//! Deterministic fault injection for the kernel↔display-manager channel.
//!
//! The paper's security argument rests on the authenticated netlink channel
//! (§IV-B) staying trustworthy; related trusted-path work stresses that it
//! must stay trustworthy *across component failure*. This module provides
//! the failure model: a seeded [`FaultPlan`], driven by the same
//! deterministic substrate as everything else, that decides per message
//! whether the channel drops, delays, duplicates, or reorders it, whether a
//! VFS `stat` fails transiently during channel (re-)authentication, and at
//! which virtual times the X server crashes. Because the plan is a pure
//! function of its seed, every fault scenario is replayable bit-for-bit.
//!
//! The plan is a shared handle (like [`crate::Clock`]): the kernel holds one
//! clone for channel sends, the system harness holds another for scheduled
//! crashes, and both observe the same deterministic stream.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::impl_pack;
use crate::rng::SimRng;
use crate::snapshot::{Dec, Enc, Pack, SnapshotError};
use crate::time::{SimDuration, Timestamp};

/// The fate of one channel message, drawn from a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelFault {
    /// The message arrives intact, on time.
    Deliver,
    /// The message is lost in flight (the sender must retry or give up).
    Drop,
    /// The message arrives after the given extra in-flight time.
    Delay(SimDuration),
    /// The message arrives twice (receivers must deduplicate).
    Duplicate,
    /// The message overtakes / is overtaken by later traffic.
    Reorder,
}

/// Plain-data description of a fault scenario. Lives in configuration
/// (`OverhaulConfig`), compiles into a [`FaultPlan`] at boot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed of the fault stream. The same spec always produces the same
    /// faults at the same points.
    pub seed: u64,
    /// Probability that a channel message is dropped in flight.
    pub drop_p: f64,
    /// Probability that a channel message is delayed in flight.
    pub delay_p: f64,
    /// Probability that a channel message is duplicated in flight.
    pub duplicate_p: f64,
    /// Probability that a channel message is reordered behind later traffic.
    pub reorder_p: f64,
    /// Lower bound of an injected in-flight delay.
    pub delay_min: SimDuration,
    /// Upper bound (exclusive) of an injected in-flight delay.
    pub delay_max: SimDuration,
    /// Probability that a VFS `stat` fails transiently while the kernel
    /// re-runs VM-map authentication for a (re)connecting peer.
    pub vfs_stat_fail_p: f64,
    /// Virtual times at which the X server crashes (each fires once).
    pub x_crash_at: Vec<Timestamp>,
}

impl FaultSpec {
    /// A plan that injects nothing: all probabilities zero, no scheduled
    /// crashes. The baseline for builder-style customization.
    pub fn quiet(seed: u64) -> Self {
        FaultSpec {
            seed,
            drop_p: 0.0,
            delay_p: 0.0,
            duplicate_p: 0.0,
            reorder_p: 0.0,
            delay_min: SimDuration::from_millis(10),
            delay_max: SimDuration::from_millis(50),
            vfs_stat_fail_p: 0.0,
            x_crash_at: Vec::new(),
        }
    }

    /// Sets the message-drop probability (builder style).
    pub fn with_drop_p(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Sets the message-delay probability (builder style).
    pub fn with_delay_p(mut self, p: f64) -> Self {
        self.delay_p = p;
        self
    }

    /// Sets the message-duplication probability (builder style).
    pub fn with_duplicate_p(mut self, p: f64) -> Self {
        self.duplicate_p = p;
        self
    }

    /// Sets the message-reorder probability (builder style).
    pub fn with_reorder_p(mut self, p: f64) -> Self {
        self.reorder_p = p;
        self
    }

    /// Sets the injected-delay window `[min, max)` (builder style).
    pub fn with_delay_window(mut self, min: SimDuration, max: SimDuration) -> Self {
        self.delay_min = min;
        self.delay_max = max;
        self
    }

    /// Sets the transient-VFS-stat-failure probability (builder style).
    pub fn with_vfs_stat_fail_p(mut self, p: f64) -> Self {
        self.vfs_stat_fail_p = p;
        self
    }

    /// Schedules X-server crashes at the given virtual times (builder
    /// style).
    pub fn with_x_crashes(mut self, at: Vec<Timestamp>) -> Self {
        self.x_crash_at = at;
        self
    }
}

/// Running counters of faults the plan has injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Channel-fault draws taken (one per message attempt).
    pub drawn: u64,
    /// Messages dropped.
    pub drops: u64,
    /// Messages delayed.
    pub delays: u64,
    /// Messages duplicated.
    pub duplicates: u64,
    /// Messages reordered.
    pub reorders: u64,
    /// Transient VFS stat failures injected.
    pub vfs_stat_failures: u64,
    /// Scheduled X crashes fired.
    pub crashes_fired: u64,
}

#[derive(Debug)]
struct Inner {
    spec: FaultSpec,
    rng: SimRng,
    crashes: VecDeque<Timestamp>,
    stats: FaultStats,
    armed: bool,
}

/// A compiled, shareable fault plan. Cloning yields another handle onto the
/// same deterministic stream (the [`crate::Clock`] idiom).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<Mutex<Inner>>,
}

impl FaultPlan {
    /// Compiles a spec: seeds the fault stream and sorts the crash
    /// schedule.
    pub fn new(spec: FaultSpec) -> Self {
        let mut crash_times = spec.x_crash_at.clone();
        crash_times.sort();
        FaultPlan {
            inner: Arc::new(Mutex::new(Inner {
                rng: SimRng::seeded(spec.seed),
                crashes: crash_times.into(),
                stats: FaultStats::default(),
                armed: true,
                spec,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("fault plan lock")
    }

    /// The spec this plan was compiled from.
    pub fn spec(&self) -> FaultSpec {
        self.lock().spec.clone()
    }

    /// Arms or disarms channel/stat fault injection (scheduled crashes are
    /// unaffected). Disarmed plans report [`ChannelFault::Deliver`] without
    /// consuming randomness, so tests can inject a burst of faults and then
    /// let the system converge.
    pub fn set_armed(&self, armed: bool) {
        self.lock().armed = armed;
    }

    /// Whether channel/stat fault injection is currently armed.
    pub fn armed(&self) -> bool {
        self.lock().armed
    }

    /// Draws the fate of the next channel message.
    pub fn next_channel_fault(&self) -> ChannelFault {
        let mut inner = self.lock();
        if !inner.armed {
            return ChannelFault::Deliver;
        }
        inner.stats.drawn += 1;
        let u = inner.rng.unit();
        let spec = &inner.spec;
        let mut edge = spec.drop_p;
        if u < edge {
            inner.stats.drops += 1;
            return ChannelFault::Drop;
        }
        edge += spec.delay_p;
        if u < edge {
            let (lo, hi) = (inner.spec.delay_min, inner.spec.delay_max);
            let d = if hi <= lo {
                lo
            } else {
                inner.rng.duration_between(lo, hi)
            };
            inner.stats.delays += 1;
            return ChannelFault::Delay(d);
        }
        edge += spec.duplicate_p;
        if u < edge {
            inner.stats.duplicates += 1;
            return ChannelFault::Duplicate;
        }
        edge += spec.reorder_p;
        if u < edge {
            inner.stats.reorders += 1;
            return ChannelFault::Reorder;
        }
        ChannelFault::Deliver
    }

    /// Whether the next VFS `stat` during peer (re-)authentication fails.
    pub fn vfs_stat_fails(&self) -> bool {
        let mut inner = self.lock();
        if !inner.armed || inner.spec.vfs_stat_fail_p <= 0.0 {
            return false;
        }
        let p = inner.spec.vfs_stat_fail_p;
        let fails = inner.rng.chance(p);
        if fails {
            inner.stats.vfs_stat_failures += 1;
        }
        fails
    }

    /// Pops every scheduled crash with time `<= now`, returning whether any
    /// fired. Each scheduled crash fires exactly once.
    pub fn x_crash_due(&self, now: Timestamp) -> bool {
        let mut inner = self.lock();
        let mut fired = false;
        while inner.crashes.front().is_some_and(|&t| t <= now) {
            inner.crashes.pop_front();
            inner.stats.crashes_fired += 1;
            fired = true;
        }
        fired
    }

    /// The next scheduled crash time, if any remain.
    pub fn next_crash_at(&self) -> Option<Timestamp> {
        self.lock().crashes.front().copied()
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.lock().stats
    }

    /// Serializes the plan's complete state — spec, RNG stream position,
    /// remaining crash schedule, stats, armed flag — for a checkpoint. Part
    /// of the hashed state section: every field determines future faults or
    /// is a pure function of the event history.
    pub fn export(&self, enc: &mut Enc) {
        let inner = self.lock();
        inner.spec.pack(enc);
        inner.rng.pack(enc);
        inner.crashes.pack(enc);
        inner.stats.pack(enc);
        inner.armed.pack(enc);
    }

    /// Rebuilds a plan from [`FaultPlan::export`] state. The restored plan
    /// continues the exact fault stream of the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] raised by malformed input.
    pub fn import(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let spec = FaultSpec::unpack(dec)?;
        let rng = SimRng::unpack(dec)?;
        let crashes = VecDeque::<Timestamp>::unpack(dec)?;
        let stats = FaultStats::unpack(dec)?;
        let armed = bool::unpack(dec)?;
        Ok(FaultPlan {
            inner: Arc::new(Mutex::new(Inner {
                spec,
                rng,
                crashes,
                stats,
                armed,
            })),
        })
    }
}

impl_pack!(FaultSpec {
    seed,
    drop_p,
    delay_p,
    duplicate_p,
    reorder_p,
    delay_min,
    delay_max,
    vfs_stat_fail_p,
    x_crash_at
});

impl_pack!(FaultStats {
    drawn,
    drops,
    delays,
    duplicates,
    reorders,
    vfs_stat_failures,
    crashes_fired
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_always_delivers() {
        let plan = FaultPlan::new(FaultSpec::quiet(1));
        for _ in 0..64 {
            assert_eq!(plan.next_channel_fault(), ChannelFault::Deliver);
        }
        assert!(!plan.vfs_stat_fails());
        assert!(!plan.x_crash_due(Timestamp::from_millis(1_000_000)));
        assert_eq!(plan.stats().drops, 0);
    }

    #[test]
    fn same_seed_same_fault_stream() {
        let spec = FaultSpec::quiet(42)
            .with_drop_p(0.3)
            .with_delay_p(0.3)
            .with_duplicate_p(0.2)
            .with_reorder_p(0.1);
        let a = FaultPlan::new(spec.clone());
        let b = FaultPlan::new(spec);
        for _ in 0..256 {
            assert_eq!(a.next_channel_fault(), b.next_channel_fault());
        }
    }

    #[test]
    fn certain_drop_always_drops() {
        let plan = FaultPlan::new(FaultSpec::quiet(7).with_drop_p(1.0));
        for _ in 0..16 {
            assert_eq!(plan.next_channel_fault(), ChannelFault::Drop);
        }
        assert_eq!(plan.stats().drops, 16);
        assert_eq!(plan.stats().drawn, 16);
    }

    #[test]
    fn delay_draws_stay_in_window() {
        let plan = FaultPlan::new(
            FaultSpec::quiet(9)
                .with_delay_p(1.0)
                .with_delay_window(SimDuration::from_millis(5), SimDuration::from_millis(9)),
        );
        for _ in 0..64 {
            match plan.next_channel_fault() {
                ChannelFault::Delay(d) => {
                    assert!(d >= SimDuration::from_millis(5) && d < SimDuration::from_millis(9));
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn degenerate_delay_window_uses_min() {
        let plan = FaultPlan::new(
            FaultSpec::quiet(9)
                .with_delay_p(1.0)
                .with_delay_window(SimDuration::from_millis(30), SimDuration::from_millis(30)),
        );
        assert_eq!(
            plan.next_channel_fault(),
            ChannelFault::Delay(SimDuration::from_millis(30))
        );
    }

    #[test]
    fn crash_schedule_fires_each_time_once() {
        let plan = FaultPlan::new(FaultSpec::quiet(1).with_x_crashes(vec![
            Timestamp::from_millis(500),
            Timestamp::from_millis(100),
        ]));
        assert_eq!(plan.next_crash_at(), Some(Timestamp::from_millis(100)));
        assert!(!plan.x_crash_due(Timestamp::from_millis(99)));
        assert!(plan.x_crash_due(Timestamp::from_millis(100)));
        assert!(!plan.x_crash_due(Timestamp::from_millis(100)), "fired once");
        assert!(plan.x_crash_due(Timestamp::from_millis(10_000)));
        assert_eq!(plan.next_crash_at(), None);
        assert_eq!(plan.stats().crashes_fired, 2);
    }

    #[test]
    fn disarmed_plan_injects_nothing_and_rearms() {
        let plan = FaultPlan::new(FaultSpec::quiet(3).with_drop_p(1.0));
        plan.set_armed(false);
        assert!(!plan.armed());
        assert_eq!(plan.next_channel_fault(), ChannelFault::Deliver);
        assert_eq!(plan.stats().drawn, 0, "disarmed draws consume no stream");
        plan.set_armed(true);
        assert_eq!(plan.next_channel_fault(), ChannelFault::Drop);
    }

    #[test]
    fn clones_share_one_stream() {
        let a = FaultPlan::new(FaultSpec::quiet(5).with_drop_p(0.5));
        let b = a.clone();
        let draws_a: Vec<_> = (0..8).map(|_| a.next_channel_fault()).collect();
        assert_eq!(a.stats().drawn, 8);
        assert_eq!(b.stats().drawn, 8, "clone sees the same counters");
        let _ = draws_a;
    }

    #[test]
    fn export_import_continues_the_fault_stream() {
        let spec = FaultSpec::quiet(42)
            .with_drop_p(0.3)
            .with_delay_p(0.3)
            .with_duplicate_p(0.1)
            .with_x_crashes(vec![Timestamp::from_millis(900)]);
        let original = FaultPlan::new(spec.clone());
        let uninterrupted = FaultPlan::new(spec);
        for _ in 0..100 {
            assert_eq!(
                original.next_channel_fault(),
                uninterrupted.next_channel_fault()
            );
        }
        let mut enc = Enc::new();
        original.export(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let restored = FaultPlan::import(&mut dec).expect("import");
        dec.finish().expect("fully consumed");
        assert_eq!(restored.stats(), uninterrupted.stats());
        assert_eq!(restored.next_crash_at(), Some(Timestamp::from_millis(900)));
        for _ in 0..100 {
            assert_eq!(
                restored.next_channel_fault(),
                uninterrupted.next_channel_fault()
            );
        }
    }

    #[test]
    fn certain_stat_failure_fails() {
        let plan = FaultPlan::new(FaultSpec::quiet(11).with_vfs_stat_fail_p(1.0));
        assert!(plan.vfs_stat_fails());
        assert_eq!(plan.stats().vfs_stat_failures, 1);
    }
}
