//! Dense-id arena storage and string interning for the decide hot path.
//!
//! The original decide path resolved every lookup through `BTreeMap`s keyed
//! by full identifiers (pids, window ids, device path strings). This module
//! provides the two primitives that replace them:
//!
//! * [`Slab`] — a generation-checked slot arena. Values live at dense
//!   `u32` indices; each slot carries a generation counter bumped on free,
//!   so a stale [`SlotId`] held across a reuse can never alias a different
//!   occupant. Lookup is one bounds check, one generation compare, and one
//!   array index — no tree walk, no hashing.
//! * [`Interner`] — an append-only string intern table mapping each
//!   distinct string to a stable [`Sym`]. The hot path moves only the
//!   `u32` symbol; the string is resolved once at the edges (rendering,
//!   serialization).
//!
//! Both structures are deterministic: ids and symbols are assigned in
//! insertion order, so identical event histories produce identical ids on
//! every run. Neither participates in the snapshot codec directly — owners
//! serialize their contents in the legacy (sorted, fully-keyed) layout so
//! that state hashes stay byte-identical, and rebuild the arena/intern
//! state on decode.

use std::collections::HashMap;

/// A generation-checked handle into a [`Slab`].
///
/// `index` addresses the slot; `gen` must match the slot's current
/// generation for the handle to dereference. A handle to a freed (and
/// possibly reused) slot fails the generation check and behaves exactly
/// like a missing entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId {
    index: u32,
    gen: u32,
}

impl SlotId {
    /// Builds a handle from raw parts (used by tests and by owners that
    /// reconstruct arenas on snapshot decode).
    pub const fn new(index: u32, gen: u32) -> Self {
        SlotId { index, gen }
    }

    /// The dense slot index.
    pub const fn index(self) -> u32 {
        self.index
    }

    /// The generation this handle was issued under.
    pub const fn gen(self) -> u32 {
        self.gen
    }
}

#[derive(Debug, Clone)]
struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// A slot arena with generation-checked dense `u32` ids.
///
/// Freed slots go on a free list and are reused with a bumped generation,
/// so the arena stays dense under churn while stale ids stay invalid.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Inserts `value`, returning its generation-checked id. Reuses the
    /// most recently freed slot if one exists, else appends.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none());
            slot.value = Some(value);
            SlotId {
                index,
                gen: slot.gen,
            }
        } else {
            let index = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                value: Some(value),
            });
            SlotId { index, gen: 0 }
        }
    }

    /// Removes the value at `id`, bumping the slot generation so `id` (and
    /// any copy of it) is dead from now on. Returns `None` if `id` was
    /// already stale.
    pub fn remove(&mut self, id: SlotId) -> Option<T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        let value = slot.value.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.index);
        self.len -= 1;
        Some(value)
    }

    /// Shared access; fails the generation check like a missing key.
    pub fn get(&self, id: SlotId) -> Option<&T> {
        let slot = self.slots.get(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access; fails the generation check like a missing key.
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        let slot = self.slots.get_mut(id.index as usize)?;
        if slot.gen != id.gen {
            return None;
        }
        slot.value.as_mut()
    }

    /// Whether `id` currently dereferences.
    pub fn contains(&self, id: SlotId) -> bool {
        self.get(id).is_some()
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no live values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots ever allocated (live + free). Owners size parallel
    /// per-slot side tables off this.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Iterates live `(id, value)` pairs in slot-index order. Slot order
    /// is *not* key order — owners that need key-ordered traversal keep
    /// their own index.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            slot.value.as_ref().map(|v| {
                (
                    SlotId {
                        index: i as u32,
                        gen: slot.gen,
                    },
                    v,
                )
            })
        })
    }
}

/// An interned string id. `Sym`s are assigned densely in intern order and
/// are stable for the life of the [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Builds a symbol from its raw index (snapshot decode).
    pub const fn from_raw(raw: u32) -> Self {
        Sym(raw)
    }

    /// The dense index of this symbol.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

/// An append-only string intern table.
///
/// Strings intern to dense [`Sym`]s in first-seen order; symbols are never
/// freed (paths are tiny and histories bounded), which keeps every issued
/// `Sym` valid forever.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    strings: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty intern table.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `s`, returning its symbol (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&i) = self.index.get(s) {
            return Sym(i);
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), i);
        Sym(i)
    }

    /// Looks up the symbol for `s` without interning it.
    pub fn lookup(&self, s: &str) -> Option<Sym> {
        self.index.get(s).map(|&i| Sym(i))
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not issued by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn stale_id_fails_generation_check_after_reuse() {
        let mut slab = Slab::new();
        let a = slab.insert(1u32);
        slab.remove(a);
        let b = slab.insert(2u32);
        // The slot was reused...
        assert_eq!(b.index(), a.index());
        // ...but the stale handle is dead in every API.
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get_mut(a), None);
        assert!(!slab.contains(a));
        assert_eq!(slab.remove(a), None);
        // The fresh handle works.
        assert_eq!(slab.get(b), Some(&2));
    }

    #[test]
    fn double_remove_is_none_and_len_stays_consistent() {
        let mut slab = Slab::new();
        let a = slab.insert(7u8);
        assert_eq!(slab.remove(a), Some(7));
        assert_eq!(slab.remove(a), None);
        assert_eq!(slab.len(), 0);
        assert!(slab.is_empty());
    }

    #[test]
    fn churn_reuses_slots_and_capacity_stays_bounded() {
        let mut slab = Slab::new();
        for round in 0..1000u32 {
            let id = slab.insert(round);
            assert_eq!(slab.remove(id), Some(round));
        }
        assert_eq!(slab.slot_capacity(), 1, "one slot reused 1000 times");
    }

    #[test]
    fn iter_yields_live_slots_in_index_order() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        let c = slab.insert("c");
        slab.remove(b);
        let live: Vec<_> = slab.iter().collect();
        assert_eq!(live, vec![(a, &"a"), (c, &"c")]);
    }

    #[test]
    fn interner_is_idempotent_and_dense() {
        let mut interner = Interner::new();
        let mic = interner.intern("/dev/mic0");
        let cam = interner.intern("/dev/video0");
        assert_eq!(interner.intern("/dev/mic0"), mic);
        assert_ne!(mic, cam);
        assert_eq!(mic.as_raw(), 0);
        assert_eq!(cam.as_raw(), 1);
        assert_eq!(interner.resolve(mic), "/dev/mic0");
        assert_eq!(interner.lookup("/dev/video0"), Some(cam));
        assert_eq!(interner.lookup("/dev/none"), None);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn interner_symbols_are_insertion_ordered_hence_deterministic() {
        let mut a = Interner::new();
        let mut b = Interner::new();
        for s in ["x", "y", "x", "z"] {
            assert_eq!(a.intern(s).as_raw(), b.intern(s).as_raw());
        }
    }
}
