//! Mergeable, exemplar-linked latency sketches for the observability plane.
//!
//! A [`Sketch`] is a hand-rolled, dependency-free, DDSketch-style
//! log-bucketed histogram over `u64` values: each value lands in a bucket
//! whose width grows geometrically (four linear sub-buckets per power of
//! two, ≈12.5 % relative error above 4), so percentile queries over
//! billions of observations cost a few hundred bytes. Sketches merge by
//! bucket-wise addition, which is associative and commutative — the fleet
//! merges per-shard sketches in canonical (shard-index) order and the
//! result is independent of worker scheduling.
//!
//! Every non-empty bucket carries an **exemplar**: the replay coordinate
//! `(shard seed, event index, span id, ledger seq)` of the most extreme
//! observation that landed there. A percentile outlier therefore resolves
//! to a concrete, re-executable event: boot (or restore) the shard, apply
//! the recorded log up to the event index, and the same span id and
//! ledger sequence number fall out again.
//!
//! A [`SketchBook`] holds one sketch pair per instrumented [`Mechanism`]:
//!
//! * the **deterministic plane** — virtual-time values plus all counts and
//!   exemplar coordinates. A pure function of the event sequence, so two
//!   same-seed runs produce byte-identical
//!   [`SketchBook::canonical_bytes`].
//! * the **wall plane** — nanosecond costs measured with the host clock.
//!   Merged and reported (fleet percentiles, bench artifacts) but
//!   excluded from the canonical bytes, exactly like the tracer buffer is
//!   aux-not-hashed in snapshots.
//!
//! The [`Sketches`] handle is the shared, clonable recording endpoint the
//! kernel and the assembled machine write through (the same pattern as
//! [`crate::Tracer`]).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::snapshot::{Dec, Enc, Pack, Snapshot, SnapshotError};

/// An instrumented mechanism: one latency population per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mechanism {
    /// A mediation decision served from the verdict cache (head-sampled).
    DecideCached,
    /// A mediation decision that ran the full policy engine (head-sampled).
    DecideUncached,
    /// One authenticated netlink channel exchange, including fault
    /// handling and retries.
    ChannelExchange,
    /// Retry count of a degraded channel exchange (value = retries drawn,
    /// recorded once per exchange that retried).
    ChannelRetry,
    /// The hash-chain ledger append on the mediation path (head-sampled
    /// with its decide).
    LedgerAppend,
    /// A shared-memory interposition page fault, including propagation
    /// embed/adopt work.
    MmFault,
    /// A full machine checkpoint ([`crate::Snapshot`] export).
    SnapshotExport,
    /// An in-place machine restore from a checkpoint.
    SnapshotRestore,
}

impl Mechanism {
    /// Every mechanism, in canonical (tag) order.
    pub const ALL: [Mechanism; 8] = [
        Mechanism::DecideCached,
        Mechanism::DecideUncached,
        Mechanism::ChannelExchange,
        Mechanism::ChannelRetry,
        Mechanism::LedgerAppend,
        Mechanism::MmFault,
        Mechanism::SnapshotExport,
        Mechanism::SnapshotRestore,
    ];

    /// Stable snake_case label (used for metric labels and CLI arguments).
    pub fn label(&self) -> &'static str {
        match self {
            Mechanism::DecideCached => "decide_cached",
            Mechanism::DecideUncached => "decide_uncached",
            Mechanism::ChannelExchange => "channel_exchange",
            Mechanism::ChannelRetry => "channel_retry",
            Mechanism::LedgerAppend => "ledger_append",
            Mechanism::MmFault => "mm_fault",
            Mechanism::SnapshotExport => "snapshot",
            Mechanism::SnapshotRestore => "restore",
        }
    }

    /// Parses a label (or a convenience alias) back to mechanisms.
    /// `decide` expands to both decide variants, `channel` to the
    /// exchange; exact labels map to themselves.
    pub fn parse(name: &str) -> Option<Vec<Mechanism>> {
        match name {
            "decide" => Some(vec![Mechanism::DecideCached, Mechanism::DecideUncached]),
            "channel" => Some(vec![Mechanism::ChannelExchange]),
            other => Mechanism::ALL
                .iter()
                .find(|m| m.label() == other)
                .map(|m| vec![*m]),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Mechanism::DecideCached => 0,
            Mechanism::DecideUncached => 1,
            Mechanism::ChannelExchange => 2,
            Mechanism::ChannelRetry => 3,
            Mechanism::LedgerAppend => 4,
            Mechanism::MmFault => 5,
            Mechanism::SnapshotExport => 6,
            Mechanism::SnapshotRestore => 7,
        }
    }

    fn from_tag(tag: u8) -> Result<Mechanism, SnapshotError> {
        Mechanism::ALL
            .get(tag as usize)
            .copied()
            .ok_or(SnapshotError::BadValue("mechanism"))
    }
}

impl Pack for Mechanism {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u8(self.tag());
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Mechanism::from_tag(dec.take_u8()?)
    }
}

/// The replay coordinate of one recorded observation: enough to re-execute
/// the exact event that produced it and check the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The shard seed identifying which machine recorded it.
    pub seed: u64,
    /// 1-based index of the applied [`overhaul event`](crate) — the
    /// recording machine's `events_applied` cursor at observation time
    /// (0 when the observation happened outside any applied event).
    pub event_idx: u64,
    /// Raw trace span id recorded with the observation (0 when tracing
    /// was disabled or the span was dropped).
    pub span: u64,
    /// Ledger sequence number of the last entry sealed by (or before)
    /// the observed operation.
    pub ledger_seq: u64,
    /// The observed value itself (plane-dependent unit).
    pub value: u64,
}

impl Exemplar {
    /// Whether `self` should replace `other` as a bucket's exemplar:
    /// larger values win; ties break toward the smallest
    /// `(seed, event_idx)` so merges are order-independent.
    fn beats(&self, other: &Exemplar) -> bool {
        (self.value, std::cmp::Reverse((self.seed, self.event_idx)))
            > (
                other.value,
                std::cmp::Reverse((other.seed, other.event_idx)),
            )
    }
}

crate::impl_pack!(Exemplar {
    seed,
    event_idx,
    span,
    ledger_seq,
    value,
});

/// Number of linear sub-buckets per power of two. Four gives ≈12.5 %
/// relative error above 4 at ≤ 257 buckets over the full `u64` range.
const SUBBUCKETS: u64 = 4;

/// One log-bucketed histogram with per-bucket exemplars.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sketch {
    /// Total observations.
    count: u64,
    /// Sum of observed values (saturating).
    sum: u64,
    /// Largest observed value.
    max: u64,
    /// Bucket index → observation count.
    buckets: BTreeMap<u16, u64>,
    /// Bucket index → exemplar of the most extreme observation there.
    exemplars: BTreeMap<u16, Exemplar>,
}

/// Maps a value to its bucket index: 0 holds exactly 0; above that, each
/// power of two splits into [`SUBBUCKETS`] linear sub-buckets.
fn bucket_index(v: u64) -> u16 {
    if v == 0 {
        return 0;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let sub = if msb >= 2 { (v >> (msb - 2)) & 0b11 } else { 0 };
    (1 + msb * SUBBUCKETS + sub) as u16
}

/// The lower bound of a bucket — the representative value percentile
/// queries report (so reported quantiles never exceed the true value).
fn bucket_lower(idx: u16) -> u64 {
    if idx == 0 {
        return 0;
    }
    let i = u64::from(idx - 1);
    let msb = i / SUBBUCKETS;
    let sub = i % SUBBUCKETS;
    if msb < 2 {
        1 << msb
    } else {
        (1 << msb) | (sub << (msb - 2))
    }
}

impl Sketch {
    /// An empty sketch.
    pub fn new() -> Sketch {
        Sketch::default()
    }

    /// Records one observation with its replay coordinate.
    pub fn record(&mut self, value: u64, exemplar: Exemplar) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        let idx = bucket_index(value);
        *self.buckets.entry(idx).or_insert(0) += 1;
        match self.exemplars.get(&idx) {
            Some(existing) if !exemplar.beats(existing) => {}
            _ => {
                self.exemplars.insert(idx, exemplar);
            }
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observed value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Merges another sketch in: bucket-wise count addition, exemplars
    /// resolved by keeping the larger observation (`Exemplar::beats`).
    /// Associative and commutative, so the merged result is independent
    /// of merge order.
    pub fn merge(&mut self, other: &Sketch) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (idx, n) in &other.buckets {
            *self.buckets.entry(*idx).or_insert(0) += n;
        }
        for (idx, ex) in &other.exemplars {
            match self.exemplars.get(idx) {
                Some(existing) if !ex.beats(existing) => {}
                _ => {
                    self.exemplars.insert(*idx, *ex);
                }
            }
        }
    }

    /// The value at quantile `q` (in `[0, 1]`): the lower bound of the
    /// bucket holding the `ceil(q·count)`-th smallest observation.
    /// Returns 0 for an empty sketch.
    pub fn quantile(&self, q: f64) -> u64 {
        let Some(idx) = self.quantile_bucket(q) else {
            return 0;
        };
        bucket_lower(idx)
    }

    /// The exemplar at quantile `q`: the replay coordinate stored in the
    /// quantile's bucket. `None` only for an empty sketch.
    pub fn exemplar_at(&self, q: f64) -> Option<Exemplar> {
        let idx = self.quantile_bucket(q)?;
        self.exemplars.get(&idx).copied()
    }

    fn quantile_bucket(&self, q: f64) -> Option<u16> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(*idx);
            }
        }
        self.buckets.keys().next_back().copied()
    }
}

crate::impl_pack!(Sketch {
    count,
    sum,
    max,
    buckets,
    exemplars,
});

/// The quantiles the fleet reports per mechanism.
pub const FLEET_QUANTILES: [(&str, f64); 4] =
    [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("p999", 0.999)];

/// A full set of per-mechanism sketches for one machine (or one merged
/// fleet), split into the deterministic virtual-time plane and the
/// advisory wall-nanosecond plane. See the module docs for the split.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SketchBook {
    /// Identity of the recording machine (the shard seed); exemplars are
    /// stamped with it. 0 for merged books — their exemplars carry the
    /// per-shard seeds.
    seed: u64,
    /// 1-based cursor of the event currently being applied (the count of
    /// `apply_event` calls so far, incremented before each application).
    event_idx: u64,
    /// Deterministic plane: virtual-time values (milliseconds).
    virt: BTreeMap<Mechanism, Sketch>,
    /// Advisory plane: wall-clock costs (nanoseconds).
    wall: BTreeMap<Mechanism, Sketch>,
    /// Watch filter: `(mechanisms, event_idx)` — observations matching it
    /// are appended to `watched`. Transient; never serialized.
    watch: Option<(Vec<Mechanism>, u64)>,
    /// `(span, ledger_seq)` coordinates captured by the watch filter.
    watched: Vec<(u64, u64)>,
}

impl SketchBook {
    /// An empty book.
    pub fn new() -> SketchBook {
        SketchBook::default()
    }

    /// Stamps the recording machine's identity (exemplar `seed` field).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// The recording machine's identity.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Advances the applied-event cursor (called once per `apply_event`).
    pub fn note_event(&mut self) {
        self.event_idx += 1;
    }

    /// The current applied-event cursor (1-based; 0 before any event).
    pub fn event_idx(&self) -> u64 {
        self.event_idx
    }

    /// Installs a watch: observations for any of `mechs` recorded while
    /// the cursor equals `event_idx` have their `(span, ledger_seq)`
    /// captured for [`SketchBook::watched`]. Replaces any prior watch and
    /// clears prior captures.
    pub fn set_watch(&mut self, mechs: Vec<Mechanism>, event_idx: u64) {
        self.watch = Some((mechs, event_idx));
        self.watched.clear();
    }

    /// The `(span, ledger_seq)` coordinates the current watch captured.
    pub fn watched(&self) -> &[(u64, u64)] {
        &self.watched
    }

    /// Records one observation for `mech`: `virt_ms` into the
    /// deterministic plane, `wall_ns` into the advisory plane, both
    /// stamped with the current replay coordinate.
    pub fn record(&mut self, mech: Mechanism, virt_ms: u64, wall_ns: u64, span: u64, seq: u64) {
        let base = Exemplar {
            seed: self.seed,
            event_idx: self.event_idx,
            span,
            ledger_seq: seq,
            value: 0,
        };
        self.virt.entry(mech).or_default().record(
            virt_ms,
            Exemplar {
                value: virt_ms,
                ..base
            },
        );
        self.wall.entry(mech).or_default().record(
            wall_ns,
            Exemplar {
                value: wall_ns,
                ..base
            },
        );
        if let Some((mechs, at)) = &self.watch {
            if *at == self.event_idx && mechs.contains(&mech) {
                self.watched.push((span, seq));
            }
        }
    }

    /// The deterministic-plane sketch for `mech`, if it recorded anything.
    pub fn virt(&self, mech: Mechanism) -> Option<&Sketch> {
        self.virt.get(&mech)
    }

    /// The wall-plane sketch for `mech`, if it recorded anything.
    pub fn wall(&self, mech: Mechanism) -> Option<&Sketch> {
        self.wall.get(&mech)
    }

    /// The wall-plane sketch merged over several mechanisms (used for the
    /// `decide` alias that spans cached + uncached).
    pub fn wall_merged(&self, mechs: &[Mechanism]) -> Sketch {
        let mut out = Sketch::new();
        for mech in mechs {
            if let Some(s) = self.wall.get(mech) {
                out.merge(s);
            }
        }
        out
    }

    /// Mechanisms with at least one observation, in canonical order.
    pub fn recorded(&self) -> Vec<Mechanism> {
        Mechanism::ALL
            .iter()
            .copied()
            .filter(|m| self.wall.get(m).is_some_and(|s| s.count() > 0))
            .collect()
    }

    /// Merges another book in (both planes). The merged book's identity
    /// and cursor are cleared — exemplars carry per-shard coordinates.
    pub fn merge(&mut self, other: &SketchBook) {
        self.seed = 0;
        self.event_idx = 0;
        for (mech, sketch) in &other.virt {
            self.virt.entry(*mech).or_default().merge(sketch);
        }
        for (mech, sketch) in &other.wall {
            self.wall.entry(*mech).or_default().merge(sketch);
        }
    }

    /// The canonical encoding of the deterministic plane. Two same-seed
    /// soaks must produce byte-identical canonical bytes for their merged
    /// books; the wall plane is deliberately excluded.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.virt.pack(&mut enc);
        enc.into_bytes()
    }

    /// Serializes the whole book as a versioned container: the
    /// deterministic plane in the hashed state section, the wall plane in
    /// the aux section (mirroring how machine snapshots treat it).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut state = Enc::new();
        self.seed.pack(&mut state);
        self.event_idx.pack(&mut state);
        self.virt.pack(&mut state);
        let mut aux = Enc::new();
        self.wall.pack(&mut aux);
        Snapshot::new(state.into_bytes(), aux.into_bytes()).to_bytes()
    }

    /// Parses a book serialized by [`SketchBook::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from truncated or corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<SketchBook, SnapshotError> {
        let container = Snapshot::from_bytes(bytes)?;
        let mut state = Dec::new(container.state());
        let seed = u64::unpack(&mut state)?;
        let event_idx = u64::unpack(&mut state)?;
        let virt = BTreeMap::unpack(&mut state)?;
        state.finish()?;
        let mut aux = Dec::new(container.aux());
        let wall = BTreeMap::unpack(&mut aux)?;
        aux.finish()?;
        Ok(SketchBook {
            seed,
            event_idx,
            virt,
            wall,
            watch: None,
            watched: Vec::new(),
        })
    }

    /// Renders the wall-plane percentile table the fleet soak prints.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}  (wall ns)\n",
            "mechanism", "samples", "p50", "p90", "p99", "p999"
        ));
        for mech in self.recorded() {
            let s = self.wall_merged(&[mech]);
            out.push_str(&format!(
                "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                mech.label(),
                s.count(),
                s.quantile(0.50),
                s.quantile(0.90),
                s.quantile(0.99),
                s.quantile(0.999),
            ));
        }
        out
    }
}

impl Pack for SketchBook {
    fn pack(&self, enc: &mut Enc) {
        self.seed.pack(enc);
        self.event_idx.pack(enc);
        self.virt.pack(enc);
        self.wall.pack(enc);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(SketchBook {
            seed: Pack::unpack(dec)?,
            event_idx: Pack::unpack(dec)?,
            virt: Pack::unpack(dec)?,
            wall: Pack::unpack(dec)?,
            watch: None,
            watched: Vec::new(),
        })
    }
}

/// The shared recording handle: clones write into one [`SketchBook`]
/// behind a mutex, exactly like [`crate::Tracer`] clones share one span
/// buffer. Always installed (recording is cheap and head-sampled on the
/// hot path), so the decide serial advances uniformly in every machine.
#[derive(Debug, Clone, Default)]
pub struct Sketches(Arc<Mutex<SketchBook>>);

impl Sketches {
    /// A handle over a fresh empty book.
    pub fn new() -> Sketches {
        Sketches::default()
    }

    /// Wraps an existing book (snapshot restore).
    pub fn from_book(book: SketchBook) -> Sketches {
        Sketches(Arc::new(Mutex::new(book)))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SketchBook> {
        // A panic inside a shard while recording must not poison the whole
        // fleet's ability to read the book back out.
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one observation (see [`SketchBook::record`]).
    pub fn record(&self, mech: Mechanism, virt_ms: u64, wall_ns: u64, span: u64, seq: u64) {
        self.lock().record(mech, virt_ms, wall_ns, span, seq);
    }

    /// Advances the applied-event cursor.
    pub fn note_event(&self) {
        self.lock().note_event();
    }

    /// Stamps the recording machine's identity.
    pub fn set_seed(&self, seed: u64) {
        self.lock().set_seed(seed);
    }

    /// Installs a watch (see [`SketchBook::set_watch`]).
    pub fn set_watch(&self, mechs: Vec<Mechanism>, event_idx: u64) {
        self.lock().set_watch(mechs, event_idx);
    }

    /// The coordinates the current watch captured.
    pub fn watched(&self) -> Vec<(u64, u64)> {
        self.lock().watched().to_vec()
    }

    /// A point-in-time copy of the book.
    pub fn book(&self) -> SketchBook {
        self.lock().clone()
    }

    /// Serializes the book into a snapshot section.
    pub fn export(&self, enc: &mut Enc) {
        self.lock().pack(enc);
    }

    /// Restores a handle from a snapshot section.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from truncated or corrupt input.
    pub fn import(dec: &mut Dec<'_>) -> Result<Sketches, SnapshotError> {
        Ok(Sketches::from_book(SketchBook::unpack(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(seed: u64, idx: u64, value: u64) -> Exemplar {
        Exemplar {
            seed,
            event_idx: idx,
            span: idx * 10,
            ledger_seq: idx * 100,
            value,
        }
    }

    #[test]
    fn bucket_bounds_are_monotone_and_tight() {
        let mut last = None;
        for v in [0u64, 1, 2, 3, 4, 5, 7, 8, 9, 100, 1_000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            let lower = bucket_lower(idx);
            assert!(lower <= v, "lower bound {lower} exceeds value {v}");
            // Relative error of the representative is bounded (≈12.5 %
            // above 4; the tiny buckets are at worst half-off).
            if v >= 4 {
                assert!(v - lower <= v / 4, "bucket too wide at {v}: lower {lower}");
            }
            if let Some((pv, pidx)) = last {
                if v > pv {
                    assert!(idx >= pidx, "bucket index must be monotone");
                }
            }
            last = Some((v, idx));
        }
    }

    #[test]
    fn quantiles_track_the_population() {
        let mut s = Sketch::new();
        for v in 1..=1000u64 {
            s.record(v, ex(1, v, v));
        }
        assert_eq!(s.count(), 1000);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((400..=500).contains(&p50), "p50 was {p50}");
        assert!((800..=990).contains(&p99), "p99 was {p99}");
        assert!(p50 <= p99);
        assert!(s.quantile(1.0) <= s.max());
    }

    #[test]
    fn merge_is_order_independent_including_exemplars() {
        let mut a = Sketch::new();
        let mut b = Sketch::new();
        let mut c = Sketch::new();
        for v in 0..200u64 {
            a.record(v * 3, ex(1, v, v * 3));
            b.record(v * 7, ex(2, v, v * 7));
            c.record(v * 11, ex(3, v, v * 11));
        }
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_ba = c.clone();
        c_ba.merge(&b);
        c_ba.merge(&a);
        assert_eq!(ab_c, c_ba);
    }

    #[test]
    fn exemplar_tie_breaks_toward_smallest_coordinate() {
        let mut a = Sketch::new();
        a.record(64, ex(5, 9, 64));
        let mut b = Sketch::new();
        b.record(64, ex(2, 30, 64));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let got = ab.exemplar_at(1.0).unwrap();
        assert_eq!((got.seed, got.event_idx), (2, 30), "tie → smallest coord");
    }

    #[test]
    fn book_round_trips_and_canonical_bytes_exclude_wall() {
        let mut book = SketchBook::new();
        book.set_seed(0xabc);
        book.note_event();
        book.record(Mechanism::DecideCached, 0, 1234, 7, 3);
        book.record(Mechanism::ChannelExchange, 5, 99_000, 8, 4);
        let decoded = SketchBook::from_bytes(&book.to_bytes()).expect("decode");
        assert_eq!(decoded, book);

        // Same deterministic plane, different wall values → identical
        // canonical bytes.
        let mut other = SketchBook::new();
        other.set_seed(0xabc);
        other.note_event();
        other.record(Mechanism::DecideCached, 0, 999_999, 7, 3);
        other.record(Mechanism::ChannelExchange, 5, 1, 8, 4);
        assert_eq!(book.canonical_bytes(), other.canonical_bytes());
        assert_ne!(book, other, "wall planes differ");
    }

    #[test]
    fn watch_captures_matching_coordinates() {
        let mut book = SketchBook::new();
        book.set_watch(vec![Mechanism::DecideCached, Mechanism::DecideUncached], 2);
        book.note_event(); // cursor 1
        book.record(Mechanism::DecideCached, 0, 10, 111, 5);
        book.note_event(); // cursor 2
        book.record(Mechanism::DecideUncached, 0, 10, 222, 6);
        book.record(Mechanism::MmFault, 0, 10, 333, 7);
        book.note_event(); // cursor 3
        book.record(Mechanism::DecideCached, 0, 10, 444, 8);
        assert_eq!(book.watched(), &[(222, 6)]);
    }

    #[test]
    fn mechanism_labels_round_trip_through_parse() {
        for mech in Mechanism::ALL {
            assert_eq!(Mechanism::parse(mech.label()), Some(vec![mech]));
        }
        assert_eq!(
            Mechanism::parse("decide"),
            Some(vec![Mechanism::DecideCached, Mechanism::DecideUncached])
        );
        assert_eq!(Mechanism::parse("nope"), None);
    }
}
