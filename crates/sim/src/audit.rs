//! Structured audit log.
//!
//! Section V of the paper repeatedly relies on Overhaul's logs: the
//! applicability study (§V-C) "verified correct functionality by inspecting
//! the logs produced by our system", and the empirical study (§V-D) checked
//! "OVERHAUL's logs ... that attempts to access the protected resources were
//! detected and blocked". This module is that log: every layer appends
//! [`AuditEvent`]s, and the experiment harnesses query them to produce the
//! reported numbers.

use std::borrow::Cow;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::Pid;
use crate::time::Timestamp;

/// The kind of event recorded in the audit log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditCategory {
    /// The display manager authenticated a hardware input event and notified
    /// the kernel permission monitor (an `N_{A,t}` in the paper's notation).
    InteractionNotification,
    /// The permission monitor granted a privileged operation.
    PermissionGranted,
    /// The permission monitor denied a privileged operation.
    PermissionDenied,
    /// A synthetic input event was filtered by the trusted input path.
    SyntheticInputFiltered,
    /// An interaction notification was suppressed by the clickjacking
    /// visibility-threshold defense.
    ClickjackingSuppressed,
    /// A visual alert was rendered on the trusted output path.
    AlertDisplayed,
    /// An interaction timestamp propagated across a process boundary
    /// (fork, IPC message, shared-memory fault, or pseudo-terminal write).
    InteractionPropagated,
    /// A protocol-level attack was detected and blocked by the display
    /// manager (e.g. a forged `SelectionRequest` via `SendEvent`).
    ProtocolAttackBlocked,
    /// ptrace hardening intervened (permissions of a traced process frozen,
    /// or an attach rejected).
    PtraceHardening,
    /// The kernel↔display-manager channel changed health (retry, loss,
    /// state transition, reconnect) or a fault was injected into it.
    ChannelEvent,
    /// Free-form informational event from a harness or app.
    Info,
}

impl fmt::Display for AuditCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AuditCategory::InteractionNotification => "interaction-notification",
            AuditCategory::PermissionGranted => "permission-granted",
            AuditCategory::PermissionDenied => "permission-denied",
            AuditCategory::SyntheticInputFiltered => "synthetic-input-filtered",
            AuditCategory::ClickjackingSuppressed => "clickjacking-suppressed",
            AuditCategory::AlertDisplayed => "alert-displayed",
            AuditCategory::InteractionPropagated => "interaction-propagated",
            AuditCategory::ProtocolAttackBlocked => "protocol-attack-blocked",
            AuditCategory::PtraceHardening => "ptrace-hardening",
            AuditCategory::ChannelEvent => "channel-event",
            AuditCategory::Info => "info",
        };
        f.write_str(name)
    }
}

/// One record in the audit log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditEvent {
    /// Virtual time at which the event occurred.
    pub at: Timestamp,
    /// What happened.
    pub category: AuditCategory,
    /// The process the event concerns, when one is identifiable.
    pub pid: Option<Pid>,
    /// Human-readable detail (resource name, operation, reason).
    /// `Cow` keeps the mediation hot path allocation-free: common details
    /// are static strings.
    pub detail: Cow<'static, str>,
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pid {
            Some(pid) => write!(
                f,
                "[{}] {} {}: {}",
                self.at, self.category, pid, self.detail
            ),
            None => write!(f, "[{}] {}: {}", self.at, self.category, self.detail),
        }
    }
}

/// An append-only, queryable event log.
///
/// ```
/// use overhaul_sim::{AuditCategory, AuditLog, Pid, Timestamp};
///
/// let mut log = AuditLog::new();
/// log.record(Timestamp::from_millis(10), AuditCategory::PermissionDenied,
///            Some(Pid::from_raw(7)), "mic open without interaction");
/// assert_eq!(log.count(AuditCategory::PermissionDenied), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditLog {
    events: Vec<AuditEvent>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AuditLog::default()
    }

    /// Appends an event.
    #[inline]
    pub fn record(
        &mut self,
        at: Timestamp,
        category: AuditCategory,
        pid: Option<Pid>,
        detail: impl Into<Cow<'static, str>>,
    ) {
        self.events.push(AuditEvent {
            at,
            category,
            pid,
            detail: detail.into(),
        });
    }

    /// All events, in insertion (and therefore virtual-time) order.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Number of events in `category`.
    pub fn count(&self, category: AuditCategory) -> usize {
        self.events
            .iter()
            .filter(|e| e.category == category)
            .count()
    }

    /// Number of events in `category` attributed to `pid`.
    pub fn count_for(&self, category: AuditCategory, pid: Pid) -> usize {
        self.events
            .iter()
            .filter(|e| e.category == category && e.pid == Some(pid))
            .count()
    }

    /// Iterator over events in `category`.
    pub fn in_category(&self, category: AuditCategory) -> impl Iterator<Item = &AuditEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// Iterator over events whose detail contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a AuditEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.detail.contains(needle))
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Moves all events out of `other` into `self`, preserving order.
    pub fn absorb(&mut self, other: &mut AuditLog) {
        self.events.append(&mut other.events);
    }

    /// Drops all events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

mod pack {
    //! Snapshot codec for the audit log (part of the hashed state section:
    //! the log is a pure function of the event history, so replay must
    //! reproduce it byte-for-byte).

    use std::borrow::Cow;

    use super::{AuditCategory, AuditEvent, AuditLog};
    use crate::impl_pack;
    use crate::snapshot::{Dec, Enc, Pack, SnapshotError};

    impl Pack for AuditCategory {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                AuditCategory::InteractionNotification => 0,
                AuditCategory::PermissionGranted => 1,
                AuditCategory::PermissionDenied => 2,
                AuditCategory::SyntheticInputFiltered => 3,
                AuditCategory::ClickjackingSuppressed => 4,
                AuditCategory::AlertDisplayed => 5,
                AuditCategory::InteractionPropagated => 6,
                AuditCategory::ProtocolAttackBlocked => 7,
                AuditCategory::PtraceHardening => 8,
                AuditCategory::ChannelEvent => 9,
                AuditCategory::Info => 10,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => AuditCategory::InteractionNotification,
                1 => AuditCategory::PermissionGranted,
                2 => AuditCategory::PermissionDenied,
                3 => AuditCategory::SyntheticInputFiltered,
                4 => AuditCategory::ClickjackingSuppressed,
                5 => AuditCategory::AlertDisplayed,
                6 => AuditCategory::InteractionPropagated,
                7 => AuditCategory::ProtocolAttackBlocked,
                8 => AuditCategory::PtraceHardening,
                9 => AuditCategory::ChannelEvent,
                10 => AuditCategory::Info,
                _ => return Err(SnapshotError::BadValue("audit category")),
            })
        }
    }

    /// `Cow` details encode by content; restore owns the string. Equality
    /// and rendering only see the content, so this is transparent.
    impl Pack for Cow<'static, str> {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u64(self.len() as u64);
            enc.put_slice(self.as_bytes());
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(Cow::Owned(String::unpack(dec)?))
        }
    }

    impl_pack!(AuditEvent {
        at,
        category,
        pid,
        detail
    });
    impl_pack!(AuditLog { events });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AuditLog {
        let mut log = AuditLog::new();
        log.record(
            Timestamp::from_millis(1),
            AuditCategory::InteractionNotification,
            Some(Pid::from_raw(10)),
            "click on window",
        );
        log.record(
            Timestamp::from_millis(2),
            AuditCategory::PermissionGranted,
            Some(Pid::from_raw(10)),
            "mic",
        );
        log.record(
            Timestamp::from_millis(3),
            AuditCategory::PermissionDenied,
            Some(Pid::from_raw(11)),
            "cam",
        );
        log
    }

    #[test]
    fn record_and_count() {
        let log = sample();
        assert_eq!(log.len(), 3);
        assert_eq!(log.count(AuditCategory::PermissionGranted), 1);
        assert_eq!(log.count(AuditCategory::AlertDisplayed), 0);
    }

    #[test]
    fn count_for_filters_by_pid() {
        let log = sample();
        assert_eq!(
            log.count_for(AuditCategory::PermissionDenied, Pid::from_raw(11)),
            1
        );
        assert_eq!(
            log.count_for(AuditCategory::PermissionDenied, Pid::from_raw(10)),
            0
        );
    }

    #[test]
    fn matching_searches_detail() {
        let log = sample();
        assert_eq!(log.matching("mic").count(), 1);
        assert_eq!(log.matching("nothing").count(), 0);
    }

    #[test]
    fn events_preserve_order() {
        let log = sample();
        let times: Vec<u64> = log.events().iter().map(|e| e.at.as_millis()).collect();
        assert_eq!(times, vec![1, 2, 3]);
    }

    #[test]
    fn absorb_moves_events() {
        let mut a = sample();
        let mut b = AuditLog::new();
        b.record(Timestamp::from_millis(4), AuditCategory::Info, None, "x");
        a.absorb(&mut b);
        assert_eq!(a.len(), 4);
        assert!(b.is_empty());
    }

    #[test]
    fn display_includes_pid_when_present() {
        let log = sample();
        let rendered = log.events()[0].to_string();
        assert!(rendered.contains("pid:10"));
        assert!(rendered.contains("interaction-notification"));
    }

    #[test]
    fn clear_empties_log() {
        let mut log = sample();
        log.clear();
        assert!(log.is_empty());
    }
}
