//! Deterministic virtual-time tracing and metrics.
//!
//! The paper's evaluation (§V) is a story about *where mediation time goes*:
//! page-fault interposition, channel round-trips, permission checks. This
//! module gives every mediation path a shared vocabulary for that story —
//! parent-linked [`Span`]s entered and exited at [`Timestamp`] granularity,
//! instant events, and a [`MetricsRegistry`] of counters, gauges, and
//! virtual-time histograms rendered as a Prometheus-style text page.
//!
//! Everything here is deterministic: spans carry only virtual time and
//! structured fields, the registry is BTreeMap-backed so rendering order is
//! fixed, and no wall-clock or ambient randomness is consulted anywhere.
//! Two runs with the same seed therefore produce byte-identical
//! [`Tracer::render_json`] output — a property the test suite pins down.
//!
//! [`Tracer`] follows the shared-handle idiom of [`crate::FaultPlan`]: clones
//! share one buffer, and a disabled tracer (the default) costs a branch per
//! call site. The span buffer is bounded; once [`Tracer::span_limit`] nodes
//! are recorded, further spans are counted but not stored, so tracing an
//! unbounded workload cannot exhaust memory.
//!
//! [`Span`]: SpanNode

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::snapshot::{intern, Dec, Enc, Pack, SnapshotError};
use crate::time::Timestamp;
use crate::{impl_pack, impl_pack_newtype};

/// Default bound on stored span nodes per tracer.
pub const DEFAULT_SPAN_LIMIT: usize = 65_536;

/// A structured field value attached to a span or event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Boolean.
    Bool(bool),
    /// Owned string (escaped when rendered).
    Str(String),
    /// Static string — the common case on hot paths; never allocates.
    Static(&'static str),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Static(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Static(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    fn render_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(v) => json_string(v, out),
            Value::Static(v) => json_string(v, out),
        }
    }
}

fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Identifier of a recorded span node, in recording order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw recording index.
    pub fn as_raw(self) -> u64 {
        self.0
    }
}

/// Whether a node is a duration span or an instant event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Entered and exited; `exit >= enter`.
    Span,
    /// Instantaneous; `exit == enter`.
    Event,
}

/// Most structured fields one span node can carry.
pub const MAX_SPAN_FIELDS: usize = 6;

/// Filler for unused inline field slots.
const EMPTY_FIELD: (&str, Value) = ("", Value::Bool(false));

/// Structured fields of one node, stored inline so the recording path
/// never allocates (a heap `Vec` here costs more than the rest of the
/// hot-path span record combined). Fields beyond [`MAX_SPAN_FIELDS`] are
/// dropped; no instrumentation site exceeds the bound.
#[derive(Debug, Clone)]
pub struct FieldSet {
    len: u8,
    slots: [(&'static str, Value); MAX_SPAN_FIELDS],
}

impl FieldSet {
    fn new() -> Self {
        FieldSet {
            len: 0,
            slots: [EMPTY_FIELD; MAX_SPAN_FIELDS],
        }
    }

    fn from_slice(fields: &[(&'static str, Value)]) -> Self {
        let mut set = FieldSet::new();
        for (key, value) in fields {
            set.push(key, value.clone());
        }
        set
    }

    fn push(&mut self, key: &'static str, value: Value) {
        if (self.len as usize) < MAX_SPAN_FIELDS {
            self.slots[self.len as usize] = (key, value);
            self.len += 1;
        }
    }

    /// The fields in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, (&'static str, Value)> {
        self.slots[..self.len as usize].iter()
    }

    /// Whether no fields are attached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of attached fields.
    pub fn len(&self) -> usize {
        self.len as usize
    }
}

/// One recorded span or event.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name, dot-separated by subsystem (`kernel.decide`, `x.input`).
    pub name: &'static str,
    /// Span vs. instant event.
    pub kind: SpanKind,
    /// Virtual time the span was entered.
    pub enter: Timestamp,
    /// Virtual time the span was exited (None while still open).
    pub exit: Option<Timestamp>,
    /// Parent span in the open-span stack at record time.
    pub parent: Option<SpanId>,
    /// Structured fields in insertion order.
    pub fields: FieldSet,
}

#[derive(Debug, Default)]
struct TraceBuf {
    spans: Vec<SpanNode>,
    open: Vec<SpanId>,
    dropped: u64,
    limit: usize,
}

impl TraceBuf {
    fn push(&mut self, node: SpanNode) -> Option<SpanId> {
        if self.spans.len() >= self.limit {
            self.dropped += 1;
            return None;
        }
        let id = SpanId(self.spans.len() as u64);
        self.spans.push(node);
        Some(id)
    }
}

/// A shared handle onto one trace buffer.
///
/// Cheap to clone (clones share state, like [`crate::FaultPlan`]); the
/// default handle is disabled and records nothing. All methods take `&self`.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<TraceBuf>>>,
}

impl Tracer {
    /// A disabled tracer: every call is a cheap no-op.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer with the default span limit.
    pub fn enabled() -> Self {
        Tracer::with_limit(DEFAULT_SPAN_LIMIT)
    }

    /// An enabled tracer storing at most `limit` span nodes; further spans
    /// are counted in [`Tracer::dropped_spans`] but not stored.
    pub fn with_limit(limit: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(Mutex::new(TraceBuf {
                limit,
                ..TraceBuf::default()
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The maximum number of stored span nodes (0 when disabled).
    pub fn span_limit(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.lock().unwrap().limit)
    }

    /// Opens a span at `at` and pushes it on the open-span stack. Returns
    /// `None` when disabled or the buffer is full.
    pub fn span_enter(&self, name: &'static str, at: Timestamp) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let mut buf = inner.lock().unwrap();
        let parent = buf.open.last().copied();
        let id = buf.push(SpanNode {
            name,
            kind: SpanKind::Span,
            enter: at,
            exit: None,
            parent,
            fields: FieldSet::new(),
        });
        if let Some(id) = id {
            buf.open.push(id);
        }
        id
    }

    /// Closes `span` at `at` and pops it (and anything opened after it that
    /// was left open) off the open-span stack. No-op for `None`.
    pub fn span_exit(&self, span: Option<SpanId>, at: Timestamp) {
        let (Some(inner), Some(span)) = (self.inner.as_ref(), span) else {
            return;
        };
        let mut buf = inner.lock().unwrap();
        if let Some(pos) = buf.open.iter().rposition(|s| *s == span) {
            buf.open.truncate(pos);
        }
        if let Some(node) = buf.spans.get_mut(span.0 as usize) {
            node.exit = Some(at);
        }
    }

    /// Attaches a structured field to `span`. No-op for `None`.
    pub fn add_field(&self, span: Option<SpanId>, key: &'static str, value: impl Into<Value>) {
        let (Some(inner), Some(span)) = (self.inner.as_ref(), span) else {
            return;
        };
        let mut buf = inner.lock().unwrap();
        if let Some(node) = buf.spans.get_mut(span.0 as usize) {
            node.fields.push(key, value.into());
        }
    }

    /// Records a complete leaf span in one call — one lock, no stack
    /// traffic. The parent is whatever span is open at record time. This is
    /// the hot-path entry point (`kernel.decide` uses it).
    pub fn record_span(
        &self,
        name: &'static str,
        enter: Timestamp,
        exit: Timestamp,
        fields: &[(&'static str, Value)],
    ) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let mut buf = inner.lock().unwrap();
        let parent = buf.open.last().copied();
        buf.push(SpanNode {
            name,
            kind: SpanKind::Span,
            enter,
            exit: Some(exit),
            parent,
            fields: FieldSet::from_slice(fields),
        })
    }

    /// Records an instant event under the currently open span.
    pub fn event(
        &self,
        name: &'static str,
        at: Timestamp,
        fields: &[(&'static str, Value)],
    ) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let mut buf = inner.lock().unwrap();
        let parent = buf.open.last().copied();
        buf.push(SpanNode {
            name,
            kind: SpanKind::Event,
            enter: at,
            exit: Some(at),
            parent,
            fields: FieldSet::from_slice(fields),
        })
    }

    /// Number of span nodes stored so far.
    pub fn span_count(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.lock().unwrap().spans.len())
    }

    /// Number of spans dropped after the buffer filled.
    pub fn dropped_spans(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.lock().unwrap().dropped)
    }

    /// Snapshot of every recorded node, in recording order.
    pub fn nodes(&self) -> Vec<SpanNode> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.lock().unwrap().spans.clone())
    }

    /// Discards all recorded nodes (the limit is kept).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let mut buf = inner.lock().unwrap();
            buf.spans.clear();
            buf.open.clear();
            buf.dropped = 0;
        }
    }

    /// Renders the span tree as deterministic JSON, suitable for flamegraph
    /// tooling: nodes nest by parent link, children in recording order,
    /// fields in insertion order. Same recorded trace ⇒ byte-identical
    /// output.
    pub fn render_json(&self) -> String {
        let nodes = self.nodes();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut roots = Vec::new();
        for (idx, node) in nodes.iter().enumerate() {
            match node.parent {
                Some(parent) => children[parent.0 as usize].push(idx),
                None => roots.push(idx),
            }
        }
        let mut out = String::new();
        out.push_str("{\"spans\":");
        out.push_str(&nodes.len().to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&self.dropped_spans().to_string());
        out.push_str(",\"trace\":[");
        for (i, &root) in roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_node(&nodes, &children, root, &mut out);
        }
        out.push_str("]}");
        out
    }
}

fn render_node(nodes: &[SpanNode], children: &[Vec<usize>], idx: usize, out: &mut String) {
    let node = &nodes[idx];
    out.push_str("{\"name\":");
    json_string(node.name, out);
    out.push_str(",\"kind\":");
    json_string(
        match node.kind {
            SpanKind::Span => "span",
            SpanKind::Event => "event",
        },
        out,
    );
    out.push_str(",\"enter_ms\":");
    out.push_str(&node.enter.as_millis().to_string());
    if let Some(exit) = node.exit {
        out.push_str(",\"exit_ms\":");
        out.push_str(&exit.as_millis().to_string());
    }
    if !node.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in node.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(key, out);
            out.push(':');
            value.render_json(out);
        }
        out.push('}');
    }
    if !children[idx].is_empty() {
        out.push_str(",\"children\":[");
        for (i, &child) in children[idx].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            render_node(nodes, children, child, out);
        }
        out.push(']');
    }
    out.push('}');
}

/// Upper bucket bounds (milliseconds of virtual time) for histograms.
pub const HISTOGRAM_BOUNDS_MS: [u64; 12] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000];

/// A fixed-bucket histogram over virtual-time durations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BOUNDS_MS.len()],
    sum_ms: u64,
    count: u64,
}

impl Histogram {
    /// Records one observation of `ms` milliseconds.
    pub fn observe_ms(&mut self, ms: u64) {
        for (i, bound) in HISTOGRAM_BOUNDS_MS.iter().enumerate() {
            if ms <= *bound {
                self.buckets[i] += 1;
            }
        }
        self.sum_ms += ms;
        self.count += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, in milliseconds.
    pub fn sum_ms(&self) -> u64 {
        self.sum_ms
    }

    /// Cumulative count at or below each bound in [`HISTOGRAM_BOUNDS_MS`].
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }
}

/// A registry of named counters, gauges, and virtual-time histograms.
///
/// Names follow Prometheus conventions (`overhaul_<subsystem>_<what>_total`
/// for counters); label sets are written inline in the name
/// (`overhaul_propagation_hops_total{mechanism="pipe"}`). BTreeMap storage
/// makes [`MetricsRegistry::render`] output deterministic and sorted.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments counter `name` by 1 (creating it at 0 first).
    pub fn inc_counter(&mut self, name: &str) {
        self.add_counter(name, 1);
    }

    /// Adds `v` to counter `name` (creating it at 0 first).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += v;
        } else {
            self.counters.insert(name.to_string(), v);
        }
    }

    /// Sets counter `name` to the absolute value `v` (used when mirroring
    /// an authoritative legacy struct into the registry).
    pub fn set_counter(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_string(), v);
    }

    /// Reads counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Reads gauge `name` (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records a virtual-time observation in histogram `name`.
    pub fn observe_ms(&mut self, name: &str, ms: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe_ms(ms);
        } else {
            let mut h = Histogram::default();
            h.observe_ms(ms);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Reads histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Copies every metric of `other` into `self`. Counters and histograms
    /// accumulate; gauges take `other`'s value.
    pub fn absorb(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            self.add_counter(name, *v);
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            let entry = self.histograms.entry(name.clone()).or_default();
            for (mine, theirs) in entry.buckets.iter_mut().zip(h.buckets.iter()) {
                *mine += theirs;
            }
            entry.sum_ms += h.sum_ms;
            entry.count += h.count;
        }
    }

    /// Folds a *peer* registry into this one, for fleet-level aggregation
    /// across shards. Counters and histograms accumulate exactly like
    /// [`MetricsRegistry::absorb`]; gauges **sum** instead of taking the
    /// other side's value, because across independent shards a gauge like
    /// `overhaul_trace_spans_live` is a per-machine quantity and the fleet
    /// total is the meaningful aggregate. Use `absorb` when layering two
    /// views of the *same* machine, `merge` when combining *different*
    /// machines.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            self.add_counter(name, *v);
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += *v;
        }
        for (name, h) in &other.histograms {
            let entry = self.histograms.entry(name.clone()).or_default();
            for (mine, theirs) in entry.buckets.iter_mut().zip(h.buckets.iter()) {
                *mine += theirs;
            }
            entry.sum_ms += h.sum_ms;
            entry.count += h.count;
        }
    }

    /// Renders the whole registry as a Prometheus text-format page, sorted
    /// by metric name. Deterministic: same contents ⇒ byte-identical page.
    /// Each metric family gets exactly one `# HELP` and one `# TYPE`
    /// comment before its samples, per the exposition-format spec.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        for (name, v) in &self.counters {
            let base = base_name(name);
            if base != last_base {
                push_header(&mut out, base, "counter");
                last_base = base.to_string();
            }
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        last_base.clear();
        for (name, v) in &self.gauges {
            let base = base_name(name);
            if base != last_base {
                push_header(&mut out, base, "gauge");
                last_base = base.to_string();
            }
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            push_header(&mut out, name, "histogram");
            for (i, bound) in HISTOGRAM_BOUNDS_MS.iter().enumerate() {
                out.push_str(name);
                out.push_str("_bucket{le=\"");
                out.push_str(&bound.to_string());
                out.push_str("\"} ");
                out.push_str(&h.buckets[i].to_string());
                out.push('\n');
            }
            out.push_str(name);
            out.push_str("_bucket{le=\"+Inf\"} ");
            out.push_str(&h.count.to_string());
            out.push('\n');
            out.push_str(name);
            out.push_str("_sum ");
            out.push_str(&h.sum_ms.to_string());
            out.push('\n');
            out.push_str(name);
            out.push_str("_count ");
            out.push_str(&h.count.to_string());
            out.push('\n');
        }
        out
    }
}

fn base_name(name: &str) -> &str {
    match name.find('{') {
        Some(idx) => &name[..idx],
        None => name,
    }
}

/// Emits the `# HELP` / `# TYPE` comment pair for one metric family.
fn push_header(out: &mut String, base: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(base);
    out.push(' ');
    out.push_str(help_for(base));
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(base);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Help text per metric family. Families without a curated line get a
/// generic description — the exposition format requires the comment to
/// exist, not to be bespoke.
fn help_for(base: &str) -> &'static str {
    match base {
        "overhaul_decisions_total" => "Permission decisions taken by the monitor.",
        "overhaul_trace_spans" => "Span nodes currently held in the trace buffer.",
        "overhaul_trace_dropped_spans" => {
            "Spans dropped after the trace buffer filled (gauge view)."
        }
        "overhaul_trace_spans_dropped_total" => "Spans dropped after the trace buffer filled.",
        "overhaul_channel_state" => "Display channel health (2 up, 1 degraded, 0 down).",
        "overhaul_channel_exchange_ms" => "Virtual-time cost of one netlink channel exchange.",
        "overhaul_interaction_age_ms" => "Age of the interaction evidence at decision time.",
        "overhaul_snapshot_bytes_total" => "Bytes exported by machine checkpoints.",
        "overhaul_fleet_latency_ns" => "Fleet-merged wall-clock latency quantiles per mechanism.",
        "overhaul_fleet_latency_samples_total" => {
            "Fleet-merged latency observations per mechanism."
        }
        "overhaul_fleet_ledger_head" => "Per-shard sealed ledger chain head (low 63 bits).",
        "overhaul_fleet_ledger_entries_total" => "Ledger entries retained across the fleet.",
        "overhaul_fleet_ledger_effects_total" => "Fleet ledger entries per effect class.",
        _ => "Overhaul simulation metric.",
    }
}

/// Builds a labeled sample name `family{key="value"}` with the label
/// value escaped per the Prometheus text exposition format (backslash,
/// double quote, and newline must be escaped inside label values).
pub fn label_metric(family: &str, key: &str, value: &str) -> String {
    let mut out = String::with_capacity(family.len() + key.len() + value.len() + 5);
    out.push_str(family);
    out.push('{');
    out.push_str(key);
    out.push_str("=\"");
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out.push_str("\"}");
    out
}

// ---------------------------------------------------------------------
// Snapshot codec
// ---------------------------------------------------------------------
//
// The trace buffer is serialized into a checkpoint's *aux* section: a
// restored run must carry the recorded span prefix forward so that a
// replay-from-snapshot renders the same `render_json` as the uninterrupted
// run. Span and field names are `&'static str` in live form; they encode
// by content and are re-leaked through `snapshot::intern` on restore (the
// name set is bounded by the fixed instrumentation sites).

impl_pack_newtype!(SpanId, u64);

impl Pack for SpanKind {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u8(match self {
            SpanKind::Span => 0,
            SpanKind::Event => 1,
        });
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        match dec.take_u8()? {
            0 => Ok(SpanKind::Span),
            1 => Ok(SpanKind::Event),
            _ => Err(SnapshotError::BadValue("span kind")),
        }
    }
}

impl Pack for Value {
    fn pack(&self, enc: &mut Enc) {
        match self {
            Value::U64(v) => {
                enc.put_u8(0);
                v.pack(enc);
            }
            Value::I64(v) => {
                enc.put_u8(1);
                v.pack(enc);
            }
            Value::Bool(v) => {
                enc.put_u8(2);
                v.pack(enc);
            }
            Value::Str(v) => {
                enc.put_u8(3);
                v.pack(enc);
            }
            Value::Static(v) => {
                enc.put_u8(4);
                enc.put_u64(v.len() as u64);
                enc.put_slice(v.as_bytes());
            }
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(match dec.take_u8()? {
            0 => Value::U64(u64::unpack(dec)?),
            1 => Value::I64(i64::unpack(dec)?),
            2 => Value::Bool(bool::unpack(dec)?),
            3 => Value::Str(String::unpack(dec)?),
            4 => Value::Static(intern(&String::unpack(dec)?)),
            _ => return Err(SnapshotError::BadValue("trace value tag")),
        })
    }
}

impl Pack for FieldSet {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u8(self.len);
        for (key, value) in self.iter() {
            enc.put_u64(key.len() as u64);
            enc.put_slice(key.as_bytes());
            value.pack(enc);
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let len = dec.take_u8()?;
        if usize::from(len) > MAX_SPAN_FIELDS {
            return Err(SnapshotError::BadValue("field count"));
        }
        let mut set = FieldSet::new();
        for _ in 0..len {
            let key = intern(&String::unpack(dec)?);
            let value = Value::unpack(dec)?;
            set.push(key, value);
        }
        Ok(set)
    }
}

impl Pack for SpanNode {
    fn pack(&self, enc: &mut Enc) {
        enc.put_u64(self.name.len() as u64);
        enc.put_slice(self.name.as_bytes());
        self.kind.pack(enc);
        self.enter.pack(enc);
        self.exit.pack(enc);
        self.parent.pack(enc);
        self.fields.pack(enc);
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        let name = intern(&String::unpack(dec)?);
        Ok(SpanNode {
            name,
            kind: SpanKind::unpack(dec)?,
            enter: Timestamp::unpack(dec)?,
            exit: Option::<Timestamp>::unpack(dec)?,
            parent: Option::<SpanId>::unpack(dec)?,
            fields: FieldSet::unpack(dec)?,
        })
    }
}

impl Tracer {
    /// Serializes this handle's state — enabled flag, span limit, recorded
    /// nodes, open-span stack, drop counter — for a checkpoint.
    pub fn export(&self, enc: &mut Enc) {
        match &self.inner {
            None => false.pack(enc),
            Some(inner) => {
                true.pack(enc);
                let buf = inner.lock().unwrap();
                buf.limit.pack(enc);
                buf.dropped.pack(enc);
                buf.spans.pack(enc);
                buf.open.pack(enc);
            }
        }
    }

    /// Rebuilds a tracer from [`Tracer::export`] state. The restored handle
    /// is a fresh buffer (not shared with the exporting tracer) whose
    /// rendered output is byte-identical to the exporter's at export time.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] raised by malformed input.
    pub fn import(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        if !bool::unpack(dec)? {
            return Ok(Tracer::disabled());
        }
        let limit = usize::unpack(dec)?;
        let dropped = u64::unpack(dec)?;
        let spans = Vec::<SpanNode>::unpack(dec)?;
        let open = Vec::<SpanId>::unpack(dec)?;
        Ok(Tracer {
            inner: Some(Arc::new(Mutex::new(TraceBuf {
                spans,
                open,
                dropped,
                limit,
            }))),
        })
    }
}

impl_pack!(Histogram {
    buckets,
    sum_ms,
    count
});

impl_pack!(MetricsRegistry {
    counters,
    gauges,
    histograms
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Dec, Enc, Pack};
    use crate::time::SimDuration;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let span = tracer.span_enter("kernel.decide", t(5));
        assert!(span.is_none());
        tracer.add_field(span, "pid", 3u64);
        tracer.span_exit(span, t(5));
        assert!(tracer.event("mm.fault", t(6), &[]).is_none());
        assert_eq!(tracer.span_count(), 0);
        assert_eq!(
            tracer.render_json(),
            "{\"spans\":0,\"dropped\":0,\"trace\":[]}"
        );
    }

    #[test]
    fn clones_share_the_buffer() {
        let tracer = Tracer::enabled();
        let view = tracer.clone();
        tracer.record_span("kernel.decide", t(1), t(1), &[]);
        assert_eq!(view.span_count(), 1);
    }

    #[test]
    fn spans_nest_by_open_stack() {
        let tracer = Tracer::enabled();
        let outer = tracer.span_enter("channel.exchange", t(10));
        tracer.event("channel.fault", t(11), &[("kind", Value::Static("drop"))]);
        let inner = tracer.span_enter("channel.retry", t(12));
        tracer.span_exit(inner, t(13));
        tracer.span_exit(outer, t(14));
        let after = tracer.record_span("kernel.decide", t(20), t(20), &[]);

        let nodes = tracer.nodes();
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[1].parent, outer);
        assert_eq!(nodes[2].parent, outer);
        assert_eq!(nodes[0].parent, None);
        assert_eq!(nodes[after.unwrap().as_raw() as usize].parent, None);
        assert_eq!(nodes[0].exit, Some(t(14)));
    }

    #[test]
    fn render_json_nests_children_and_escapes() {
        let tracer = Tracer::enabled();
        let outer = tracer.span_enter("x.input", t(1));
        tracer.add_field(outer, "kind", "click");
        tracer.event(
            "x.clickjack",
            t(1),
            &[("window", Value::Str("\"evil\"\n".to_string()))],
        );
        tracer.span_exit(outer, t(2));
        let json = tracer.render_json();
        assert_eq!(
            json,
            "{\"spans\":2,\"dropped\":0,\"trace\":[{\"name\":\"x.input\",\"kind\":\"span\",\
             \"enter_ms\":1,\"exit_ms\":2,\"fields\":{\"kind\":\"click\"},\"children\":[\
             {\"name\":\"x.clickjack\",\"kind\":\"event\",\"enter_ms\":1,\"exit_ms\":1,\
             \"fields\":{\"window\":\"\\\"evil\\\"\\n\"}}]}]}"
        );
    }

    #[test]
    fn span_limit_bounds_memory_and_counts_drops() {
        let tracer = Tracer::with_limit(2);
        assert!(tracer.record_span("a", t(1), t(1), &[]).is_some());
        assert!(tracer.record_span("b", t(2), t(2), &[]).is_some());
        assert!(tracer.record_span("c", t(3), t(3), &[]).is_none());
        assert!(tracer.span_enter("d", t(4)).is_none());
        assert_eq!(tracer.span_count(), 2);
        assert_eq!(tracer.dropped_spans(), 2);
    }

    #[test]
    fn identical_recordings_render_identically() {
        let run = || {
            let tracer = Tracer::enabled();
            let s = tracer.span_enter("kernel.decide", t(100));
            tracer.add_field(s, "op", "mic");
            tracer.add_field(s, "verdict", "grant");
            tracer.event("mm.rearm", t(150), &[("count", Value::U64(2))]);
            tracer.span_exit(s, t(150));
            tracer.render_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clear_discards_nodes_but_keeps_limit() {
        let tracer = Tracer::with_limit(8);
        tracer.record_span("a", t(1), t(1), &[]);
        tracer.clear();
        assert_eq!(tracer.span_count(), 0);
        assert_eq!(tracer.dropped_spans(), 0);
        assert_eq!(tracer.span_limit(), 8);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::default();
        h.observe_ms(1);
        h.observe_ms(30);
        h.observe_ms(9_999);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ms(), 10_030);
        // 1ms lands in every bucket; 30ms from the 50ms bucket up; 9 999ms
        // only in +Inf (i.e. no finite bucket).
        assert_eq!(h.bucket_counts()[0], 1); // le=1
        assert_eq!(h.bucket_counts()[5], 2); // le=50
        assert_eq!(h.bucket_counts()[11], 2); // le=5000
    }

    #[test]
    fn registry_render_is_sorted_and_typed() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("overhaul_monitor_grants_total", 3);
        reg.inc_counter("overhaul_propagation_hops_total{mechanism=\"pipe\"}");
        reg.inc_counter("overhaul_propagation_hops_total{mechanism=\"pty\"}");
        reg.set_gauge("overhaul_channel_state", 2);
        reg.observe_ms("overhaul_decision_interaction_age_ms", 120);
        let page = reg.render();
        let grants = page.find("overhaul_monitor_grants_total 3").unwrap();
        let pipe = page
            .find("overhaul_propagation_hops_total{mechanism=\"pipe\"} 1")
            .unwrap();
        let pty = page
            .find("overhaul_propagation_hops_total{mechanism=\"pty\"} 1")
            .unwrap();
        assert!(grants < pipe && pipe < pty, "sorted by name");
        assert!(page.contains("# TYPE overhaul_propagation_hops_total counter"));
        assert_eq!(
            page.matches("# TYPE overhaul_propagation_hops_total counter")
                .count(),
            1,
            "one TYPE line per metric family"
        );
        assert!(page.contains("# TYPE overhaul_channel_state gauge"));
        assert!(page.contains("overhaul_decision_interaction_age_ms_bucket{le=\"250\"} 1"));
        assert!(page.contains("overhaul_decision_interaction_age_ms_sum 120"));
        assert!(page.contains("overhaul_decision_interaction_age_ms_count 1"));
    }

    #[test]
    fn registry_render_is_deterministic() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            reg.add_counter("b_total", 2);
            reg.add_counter("a_total", 1);
            reg.observe_ms("h_ms", 7);
            reg.render()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn absorb_accumulates_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.add_counter("c_total", 2);
        a.observe_ms("h_ms", 10);
        let mut b = MetricsRegistry::new();
        b.add_counter("c_total", 3);
        b.set_gauge("g", 9);
        b.observe_ms("h_ms", 20);
        a.absorb(&b);
        assert_eq!(a.counter("c_total"), 5);
        assert_eq!(a.gauge("g"), 9);
        let h = a.histogram("h_ms").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_ms(), 30);
    }

    #[test]
    fn merge_sums_gauges_across_shards() {
        // Fleet aggregation: same counters/histograms as absorb, but gauges
        // from different machines add up instead of overwriting.
        let mut fleet = MetricsRegistry::new();
        fleet.add_counter("c_total", 2);
        fleet.set_gauge("g", 4);
        fleet.observe_ms("h_ms", 10);
        let mut shard = MetricsRegistry::new();
        shard.add_counter("c_total", 3);
        shard.set_gauge("g", 9);
        shard.set_gauge("only_shard", -2);
        shard.observe_ms("h_ms", 20);
        fleet.merge(&shard);
        assert_eq!(fleet.counter("c_total"), 5);
        assert_eq!(fleet.gauge("g"), 13);
        assert_eq!(fleet.gauge("only_shard"), -2);
        let h = fleet.histogram("h_ms").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_ms(), 30);
    }

    #[test]
    fn merge_of_identical_shards_scales_linearly() {
        let mut shard = MetricsRegistry::new();
        shard.add_counter("ops_total", 7);
        shard.set_gauge("live", 3);
        shard.observe_ms("lat_ms", 5);
        let mut fleet = MetricsRegistry::new();
        for _ in 0..4 {
            fleet.merge(&shard);
        }
        assert_eq!(fleet.counter("ops_total"), 28);
        assert_eq!(fleet.gauge("live"), 12);
        assert_eq!(fleet.histogram("lat_ms").unwrap().count(), 4);
    }

    #[test]
    fn values_render_all_variants() {
        let tracer = Tracer::enabled();
        tracer.record_span(
            "probe",
            t(0),
            t(0),
            &[
                ("u", Value::U64(7)),
                ("i", Value::I64(-2)),
                ("b", Value::Bool(true)),
                ("s", Value::Static("x")),
            ],
        );
        let json = tracer.render_json();
        assert!(json.contains("\"u\":7"));
        assert!(json.contains("\"i\":-2"));
        assert!(json.contains("\"b\":true"));
        assert!(json.contains("\"s\":\"x\""));
    }

    #[test]
    fn tracer_export_import_renders_identically() {
        let tracer = Tracer::with_limit(16);
        let outer = tracer.span_enter("channel.exchange", t(10));
        tracer.add_field(outer, "kind", "notify");
        tracer.event("channel.fault", t(11), &[("kind", Value::Static("drop"))]);
        tracer.record_span(
            "kernel.decide",
            t(12),
            t(12),
            &[
                ("verdict", Value::Str("grant".into())),
                ("pid", Value::U64(7)),
            ],
        );
        // Leave `outer` open: the open stack must survive the roundtrip so
        // post-restore spans nest identically.
        let mut enc = Enc::new();
        tracer.export(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let restored = Tracer::import(&mut dec).expect("import");
        dec.finish().expect("fully consumed");
        assert_eq!(restored.render_json(), tracer.render_json());
        assert_eq!(restored.span_limit(), 16);
        // New spans keep nesting under the still-open parent on both sides.
        tracer.event("channel.retry", t(13), &[]);
        restored.event("channel.retry", t(13), &[]);
        assert_eq!(restored.render_json(), tracer.render_json());
    }

    #[test]
    fn disabled_tracer_exports_as_disabled() {
        let mut enc = Enc::new();
        Tracer::disabled().export(&mut enc);
        let bytes = enc.into_bytes();
        let restored = Tracer::import(&mut Dec::new(&bytes)).expect("import");
        assert!(!restored.is_enabled());
    }

    #[test]
    fn metrics_registry_roundtrips_byte_identically() {
        let mut reg = MetricsRegistry::new();
        reg.add_counter("overhaul_monitor_grants_total", 3);
        reg.set_gauge("overhaul_channel_state", 2);
        reg.observe_ms("overhaul_channel_exchange_ms", 42);
        let mut enc = Enc::new();
        reg.pack(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let restored = MetricsRegistry::unpack(&mut dec).expect("unpack");
        dec.finish().expect("fully consumed");
        assert_eq!(restored.render(), reg.render());
    }

    #[test]
    fn virtual_durations_feed_histograms() {
        let mut reg = MetricsRegistry::new();
        let d = SimDuration::from_millis(40);
        reg.observe_ms("w_ms", d.as_millis());
        assert_eq!(reg.histogram("w_ms").unwrap().sum_ms(), 40);
    }
}
