//! Machine-readable benchmark artifacts.
//!
//! Every perf-bearing binary writes a flat `BENCH_<name>.json` next to
//! its human-readable table so CI (and the re-anchor reviewers) get a
//! perf trajectory as data, not prose. The format is deliberately tiny —
//! one JSON object, insertion-ordered keys, scalar values only — and the
//! writer is hand-rolled so the bench path stays dependency-free.
//!
//! ```
//! use overhaul_sim::BenchArtifact;
//! let art = BenchArtifact::new("example")
//!     .text("mode", "quick")
//!     .int("iters", 1000)
//!     .num("per_op_ns", 82.5);
//! assert_eq!(
//!     art.to_json(),
//!     "{\"name\":\"example\",\"mode\":\"quick\",\"iters\":1000,\"per_op_ns\":82.5}"
//! );
//! ```
//!
//! [`BenchArtifact::write`] honors `OVERHAUL_BENCH_DIR`; otherwise the
//! file lands in the current directory (the workspace root under
//! `cargo run`).

use std::path::PathBuf;

/// One scalar field of an artifact.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    Num(f64),
    Int(u64),
    Text(String),
}

/// A flat, ordered benchmark result destined for `BENCH_<name>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    name: String,
    fields: Vec<(String, Field)>,
}

impl BenchArtifact {
    /// Starts an artifact named `name` (becomes both the `name` field and
    /// the `BENCH_<name>.json` file name).
    pub fn new(name: &str) -> Self {
        BenchArtifact {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Appends a float field. Non-finite values serialize as `null`
    /// (JSON has no NaN/inf).
    pub fn num(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.to_string(), Field::Num(v)));
        self
    }

    /// Appends an integer field.
    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.to_string(), Field::Int(v)));
        self
    }

    /// Appends a string field.
    pub fn text(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.to_string(), Field::Text(v.to_string())));
        self
    }

    /// Renders the artifact as one JSON object, keys in insertion order,
    /// `name` first.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"name\":");
        push_json_string(&mut out, &self.name);
        for (key, field) in &self.fields {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            match field {
                Field::Num(v) if v.is_finite() => out.push_str(&format_f64(*v)),
                Field::Num(_) => out.push_str("null"),
                Field::Int(v) => out.push_str(&v.to_string()),
                Field::Text(v) => push_json_string(&mut out, v),
            }
        }
        out.push('}');
        out
    }

    /// The file name this artifact writes to.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Writes `BENCH_<name>.json` (plus a trailing newline) into
    /// `$OVERHAUL_BENCH_DIR` or the current directory, returning the
    /// path.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let dir = std::env::var_os("OVERHAUL_BENCH_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

/// Shortest-roundtrip float formatting, forced to stay JSON-numeric
/// (Rust's `Display` for floats never emits exponents for the magnitudes
/// benches produce, and always includes a fractional digit via `{:?}`
/// when needed — use `{}` and accept integral floats rendering bare).
fn format_f64(v: f64) -> String {
    format!("{v}")
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_flat_ordered_and_escaped() {
        let art = BenchArtifact::new("fleet")
            .text("mode", "quick \"ci\"")
            .int("shards", 256)
            .num("shards_per_sec", 12.25)
            .num("bad", f64::NAN);
        assert_eq!(
            art.to_json(),
            "{\"name\":\"fleet\",\"mode\":\"quick \\\"ci\\\"\",\
             \"shards\":256,\"shards_per_sec\":12.25,\"bad\":null}"
        );
        assert_eq!(art.file_name(), "BENCH_fleet.json");
    }

    #[test]
    fn integral_floats_render_bare_but_numeric() {
        let art = BenchArtifact::new("x").num("v", 3.0);
        assert_eq!(art.to_json(), "{\"name\":\"x\",\"v\":3}");
    }

    #[test]
    fn write_honors_bench_dir_env() {
        let dir =
            std::env::temp_dir().join(format!("overhaul-artifact-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Env vars are process-global; serialize against other tests by
        // scoping the variable to this one write.
        std::env::set_var("OVERHAUL_BENCH_DIR", &dir);
        let path = BenchArtifact::new("envtest")
            .int("a", 1)
            .write()
            .expect("write");
        std::env::remove_var("OVERHAUL_BENCH_DIR");
        assert_eq!(path, dir.join("BENCH_envtest.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, "{\"name\":\"envtest\",\"a\":1}\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
