//! ICCCM selection (clipboard) state (§IV-A, *Clipboard*; Figure 6).
//!
//! X11 has no central clipboard: copy & paste is an inter-client protocol
//! mediated by the server. This module tracks, per selection atom, the
//! current owner and any *in-flight transfer* — the window between a
//! `ConvertSelection` (paste request) and the requestor's final
//! `GetProperty`+delete. The in-flight record is what lets the server
//! enforce that:
//!
//! * only a transfer the server itself initiated may produce a
//!   `SelectionNotify` (blocking the forged-`SendEvent` bypass), and
//! * while clipboard data sits in a property "in flight", property events
//!   and reads are restricted to the paste target (blocking snooping).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::protocol::{Atom, ClientId};
use crate::window::WindowId;

/// An in-flight clipboard transfer (steps 6–13 of Figure 6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// The selection owner converting the data.
    pub source: ClientId,
    /// The paste target that requested conversion.
    pub target: ClientId,
    /// The requestor's window that will receive the property.
    pub requestor: WindowId,
    /// The property the data travels in.
    pub property: Atom,
    /// Set once the source stored the data (step 8).
    pub data_stored: bool,
    /// Set once the server delivered `SelectionNotify` (step 10).
    pub notified: bool,
}

/// Ownership and transfer state of one selection.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionState {
    /// Current owner, with the window it asserted ownership through.
    pub owner: Option<(ClientId, WindowId)>,
    /// The in-flight transfer, if a paste is underway.
    pub transfer: Option<Transfer>,
}

/// All selections known to the server.
#[derive(Debug, Clone, Default)]
pub struct SelectionTable {
    selections: BTreeMap<Atom, SelectionState>,
}

impl SelectionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SelectionTable::default()
    }

    /// State of `selection`, creating the entry on first use.
    pub fn state_mut(&mut self, selection: &Atom) -> &mut SelectionState {
        self.selections.entry(selection.clone()).or_default()
    }

    /// Read-only state of `selection`, if it was ever used.
    pub fn state(&self, selection: &Atom) -> Option<&SelectionState> {
        self.selections.get(selection)
    }

    /// Current owner of `selection`.
    pub fn owner(&self, selection: &Atom) -> Option<ClientId> {
        self.selections
            .get(selection)
            .and_then(|s| s.owner.map(|(c, _)| c))
    }

    /// The in-flight transfer moving data through `property` on
    /// `requestor`, across all selections.
    pub fn transfer_for_property(
        &self,
        requestor: WindowId,
        property: &Atom,
    ) -> Option<(&Atom, &Transfer)> {
        self.selections.iter().find_map(|(atom, state)| {
            state
                .transfer
                .as_ref()
                .filter(|t| t.requestor == requestor && t.property == *property)
                .map(|t| (atom, t))
        })
    }

    /// Mutable variant of [`SelectionTable::transfer_for_property`].
    pub fn transfer_for_property_mut(
        &mut self,
        requestor: WindowId,
        property: &Atom,
    ) -> Option<(&Atom, &mut Transfer)> {
        self.selections.iter_mut().find_map(|(atom, state)| {
            state
                .transfer
                .as_mut()
                .filter(|t| t.requestor == requestor && t.property == *property)
                .map(|t| (atom as &Atom, t))
        })
    }

    /// Whether any transfer is currently in flight.
    pub fn any_transfer_in_flight(&self) -> bool {
        self.selections.values().any(|s| s.transfer.is_some())
    }

    /// Clears the transfer on `selection`.
    pub fn finish_transfer(&mut self, selection: &Atom) {
        if let Some(state) = self.selections.get_mut(selection) {
            state.transfer = None;
        }
    }

    /// Drops ownership and transfers held by a disconnecting client.
    pub fn purge_client(&mut self, client: ClientId) {
        for state in self.selections.values_mut() {
            if matches!(state.owner, Some((c, _)) if c == client) {
                state.owner = None;
            }
            if matches!(&state.transfer, Some(t) if t.source == client || t.target == client) {
                state.transfer = None;
            }
        }
    }
}

mod pack {
    //! Snapshot codec for selection (clipboard) state.

    use overhaul_sim::impl_pack;

    use super::{SelectionState, SelectionTable, Transfer};

    impl_pack!(Transfer {
        source,
        target,
        requestor,
        property,
        data_stored,
        notified
    });
    impl_pack!(SelectionState { owner, transfer });
    impl_pack!(SelectionTable { selections });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(n: u32) -> ClientId {
        ClientId::from_raw(n)
    }

    fn win(n: u64) -> WindowId {
        WindowId::from_raw(n)
    }

    #[test]
    fn ownership_round_trip() {
        let mut table = SelectionTable::new();
        assert_eq!(table.owner(&Atom::clipboard()), None);
        table.state_mut(&Atom::clipboard()).owner = Some((client(1), win(1)));
        assert_eq!(table.owner(&Atom::clipboard()), Some(client(1)));
        assert_eq!(
            table.owner(&Atom::primary()),
            None,
            "selections are independent"
        );
    }

    #[test]
    fn transfer_lookup_by_property() {
        let mut table = SelectionTable::new();
        table.state_mut(&Atom::clipboard()).transfer = Some(Transfer {
            source: client(1),
            target: client(2),
            requestor: win(5),
            property: Atom::new("XSEL_DATA"),
            data_stored: false,
            notified: false,
        });
        let (atom, t) = table
            .transfer_for_property(win(5), &Atom::new("XSEL_DATA"))
            .unwrap();
        assert_eq!(atom, &Atom::clipboard());
        assert_eq!(t.target, client(2));
        assert!(table
            .transfer_for_property(win(6), &Atom::new("XSEL_DATA"))
            .is_none());
        assert!(table
            .transfer_for_property(win(5), &Atom::new("OTHER"))
            .is_none());
    }

    #[test]
    fn finish_transfer_clears_state() {
        let mut table = SelectionTable::new();
        table.state_mut(&Atom::clipboard()).transfer = Some(Transfer {
            source: client(1),
            target: client(2),
            requestor: win(5),
            property: Atom::new("P"),
            data_stored: true,
            notified: true,
        });
        assert!(table.any_transfer_in_flight());
        table.finish_transfer(&Atom::clipboard());
        assert!(!table.any_transfer_in_flight());
    }

    #[test]
    fn purge_client_drops_ownership_and_transfers() {
        let mut table = SelectionTable::new();
        table.state_mut(&Atom::clipboard()).owner = Some((client(1), win(1)));
        table.state_mut(&Atom::clipboard()).transfer = Some(Transfer {
            source: client(1),
            target: client(2),
            requestor: win(5),
            property: Atom::new("P"),
            data_stored: false,
            notified: false,
        });
        table.purge_client(client(1));
        assert_eq!(table.owner(&Atom::clipboard()), None);
        assert!(!table.any_transfer_in_flight());
    }

    #[test]
    fn purge_unrelated_client_is_noop() {
        let mut table = SelectionTable::new();
        table.state_mut(&Atom::clipboard()).owner = Some((client(1), win(1)));
        table.purge_client(client(9));
        assert_eq!(table.owner(&Atom::clipboard()), Some(client(1)));
    }
}
