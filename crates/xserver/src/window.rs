//! The window tree: stacking order, visibility tracking, and per-window
//! pixel contents and properties.
//!
//! Visibility matters to Overhaul's clickjacking defense: interaction
//! notifications are generated "only if the X client receiving the event
//! has a valid mapped window that has stayed visible above a predefined
//! time threshold" (§IV-A). A window counts as visible when it is mapped
//! and at most half of its area is occluded by windows stacked above it.

use std::collections::BTreeMap;
use std::fmt;

use overhaul_sim::{Slab, SlotId, Timestamp};
use serde::{Deserialize, Serialize};

use crate::geometry::{Point, Rect};
use crate::protocol::{Atom, ClientId, XError};

/// Fraction of a window that may be covered before it stops counting as
/// visible (the clickjacking occlusion bound).
pub const OCCLUSION_LIMIT: f64 = 0.5;

/// Identifier of a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WindowId(u64);

impl WindowId {
    /// Creates a `WindowId` from its raw value.
    pub const fn from_raw(raw: u64) -> Self {
        WindowId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "win:{}", self.0)
    }
}

/// One window.
#[derive(Debug, Clone)]
pub struct Window {
    id: WindowId,
    owner: ClientId,
    rect: Rect,
    mapped: bool,
    visible_since: Option<Timestamp>,
    pixels: Vec<u8>,
    properties: BTreeMap<Atom, Vec<u8>>,
}

impl Window {
    /// Window id.
    pub fn id(&self) -> WindowId {
        self.id
    }

    /// Owning client.
    pub fn owner(&self) -> ClientId {
        self.owner
    }

    /// Geometry.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Whether the window is mapped.
    pub fn mapped(&self) -> bool {
        self.mapped
    }

    /// Since when the window has been continuously visible, if it is.
    pub fn visible_since(&self) -> Option<Timestamp> {
        self.visible_since
    }

    /// Pixel contents (row-major, 1 byte per pixel).
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// A property's value.
    pub fn property(&self, atom: &Atom) -> Option<&[u8]> {
        self.properties.get(atom).map(Vec::as_slice)
    }
}

/// ```
/// use overhaul_sim::Timestamp;
/// use overhaul_xserver::geometry::{Point, Rect};
/// use overhaul_xserver::protocol::ClientId;
/// use overhaul_xserver::window::WindowTree;
///
/// let mut tree = WindowTree::new();
/// let window = tree.create(ClientId::from_raw(1), Rect::new(0, 0, 100, 100));
/// tree.map(window, Timestamp::from_millis(10)).unwrap();
/// assert_eq!(tree.topmost_at(Point::new(50, 50)), Some(window));
/// assert!(tree.is_visible(window));
/// ```
/// The window tree (flat stacking model: all top-level).
///
/// Windows live in a generation-checked [`Slab`]; window ids are issued
/// sequentially and never reused, so `by_id` — a dense vector indexed by
/// raw id — resolves an id to its arena slot with one bounds check.
/// Destroyed ids point at a `DEAD` sentinel forever, so a lookup for
/// one fails exactly like an unknown id.
#[derive(Debug, Clone, Default)]
pub struct WindowTree {
    arena: Slab<Window>,
    /// Arena slot of each issued id, indexed by `WindowId::as_raw` (index
    /// 0 is unused: ids start at 1). [`DEAD`] marks destroyed ids.
    by_id: Vec<SlotId>,
    /// Bottom-to-top stacking order of all windows (mapped or not; only
    /// mapped windows participate in occlusion and hit tests).
    stacking: Vec<WindowId>,
    next: u64,
}

/// Slot sentinel for destroyed (or never-issued) window ids. The slab can
/// never issue it: a slab that large would exceed address space.
const DEAD: SlotId = SlotId::new(u32::MAX, u32::MAX);

impl WindowTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        WindowTree::default()
    }

    /// The arena slot of `id`, if the window is alive.
    #[inline]
    fn slot_of(&self, id: WindowId) -> Option<SlotId> {
        let slot = *self.by_id.get(id.as_raw() as usize)?;
        (slot != DEAD).then_some(slot)
    }

    /// The live window `id`, if any.
    #[inline]
    fn window(&self, id: WindowId) -> Option<&Window> {
        self.arena.get(self.slot_of(id)?)
    }

    /// The live window `id`, mutably, if any.
    #[inline]
    fn window_mut(&mut self, id: WindowId) -> Option<&mut Window> {
        let slot = self.slot_of(id)?;
        self.arena.get_mut(slot)
    }

    /// Installs `window` into the arena and the dense id index.
    fn install(&mut self, window: Window) {
        let raw = window.id.as_raw() as usize;
        let slot = self.arena.insert(window);
        if raw >= self.by_id.len() {
            self.by_id.resize(raw + 1, DEAD);
        }
        self.by_id[raw] = slot;
    }

    /// The live windows in ascending id order (the order `BTreeMap`
    /// iteration used to give).
    fn windows_by_id(&self) -> impl Iterator<Item = &Window> {
        self.by_id
            .iter()
            .filter(|slot| **slot != DEAD)
            .filter_map(|slot| self.arena.get(*slot))
    }

    /// Creates an unmapped window for `owner`, initially filled with a
    /// per-window pixel pattern (stand-in for application rendering).
    pub fn create(&mut self, owner: ClientId, rect: Rect) -> WindowId {
        self.next += 1;
        let id = WindowId(self.next);
        let fill = (id.as_raw() % 251) as u8;
        self.install(Window {
            id,
            owner,
            rect,
            mapped: false,
            visible_since: None,
            pixels: vec![fill; rect.area() as usize],
            properties: BTreeMap::new(),
        });
        self.stacking.push(id);
        id
    }

    /// Looks up a window.
    pub fn get(&self, id: WindowId) -> Result<&Window, XError> {
        self.window(id).ok_or(XError::BadWindow)
    }

    fn get_mut(&mut self, id: WindowId) -> Result<&mut Window, XError> {
        self.window_mut(id).ok_or(XError::BadWindow)
    }

    /// Maps a window (also raises it, like most window managers do) and
    /// recomputes visibility.
    pub fn map(&mut self, id: WindowId, now: Timestamp) -> Result<(), XError> {
        self.get_mut(id)?.mapped = true;
        self.raise(id, now)?;
        Ok(())
    }

    /// Unmaps a window and recomputes visibility.
    pub fn unmap(&mut self, id: WindowId, now: Timestamp) -> Result<(), XError> {
        self.get_mut(id)?.mapped = false;
        self.recompute_visibility(now);
        Ok(())
    }

    /// Raises a window to the top of the stacking order.
    pub fn raise(&mut self, id: WindowId, now: Timestamp) -> Result<(), XError> {
        if self.slot_of(id).is_none() {
            return Err(XError::BadWindow);
        }
        self.stacking.retain(|w| *w != id);
        self.stacking.push(id);
        self.recompute_visibility(now);
        Ok(())
    }

    /// Destroys a window. The freed arena slot is recycled by the next
    /// `create` (under a new generation); the id itself is dead forever.
    pub fn destroy(&mut self, id: WindowId, now: Timestamp) -> Result<(), XError> {
        let slot = self.slot_of(id).ok_or(XError::BadWindow)?;
        self.arena.remove(slot);
        self.by_id[id.as_raw() as usize] = DEAD;
        self.stacking.retain(|w| *w != id);
        self.recompute_visibility(now);
        Ok(())
    }

    /// Destroys every window owned by `client` (client disconnect),
    /// returning how many were destroyed.
    pub fn destroy_all_for(&mut self, client: ClientId, now: Timestamp) -> usize {
        let doomed: Vec<WindowId> = self
            .windows_by_id()
            .filter(|w| w.owner == client)
            .map(|w| w.id)
            .collect();
        let count = doomed.len();
        for id in &doomed {
            if let Some(slot) = self.slot_of(*id) {
                self.arena.remove(slot);
                self.by_id[id.as_raw() as usize] = DEAD;
            }
        }
        self.stacking.retain(|w| !doomed.contains(w));
        self.recompute_visibility(now);
        count
    }

    /// Replaces a window's pixel contents.
    ///
    /// # Errors
    ///
    /// [`XError::BadValue`] if `data` does not match the window area.
    pub fn put_image(&mut self, id: WindowId, data: Vec<u8>) -> Result<(), XError> {
        let window = self.get_mut(id)?;
        if data.len() != window.rect.area() as usize {
            return Err(XError::BadValue);
        }
        window.pixels = data;
        Ok(())
    }

    /// Stores a property.
    pub fn set_property(&mut self, id: WindowId, atom: Atom, data: Vec<u8>) -> Result<(), XError> {
        self.get_mut(id)?.properties.insert(atom, data);
        Ok(())
    }

    /// Reads a property, optionally deleting it.
    pub fn take_property(
        &mut self,
        id: WindowId,
        atom: &Atom,
        delete: bool,
    ) -> Result<Option<Vec<u8>>, XError> {
        let window = self.get_mut(id)?;
        if delete {
            Ok(window.properties.remove(atom))
        } else {
            Ok(window.properties.get(atom).cloned())
        }
    }

    /// Removes a property.
    pub fn delete_property(&mut self, id: WindowId, atom: &Atom) -> Result<(), XError> {
        self.get_mut(id)?.properties.remove(atom);
        Ok(())
    }

    /// The topmost mapped window containing `p` (pointer hit test).
    pub fn topmost_at(&self, p: Point) -> Option<WindowId> {
        self.stacking
            .iter()
            .rev()
            .find(|id| {
                self.window(**id)
                    .map(|w| w.mapped && w.rect.contains(p))
                    .unwrap_or(false)
            })
            .copied()
    }

    /// Whether `id` is currently visible (mapped and not occluded past the
    /// limit).
    pub fn is_visible(&self, id: WindowId) -> bool {
        self.window(id)
            .map(|w| w.visible_since.is_some())
            .unwrap_or(false)
    }

    /// Whether `client` has any window that has been continuously visible
    /// since `threshold_start` or earlier — the clickjacking gate.
    pub fn client_has_stable_window(
        &self,
        client: ClientId,
        visible_since_at_most: Timestamp,
    ) -> bool {
        self.windows_by_id().any(|w| {
            w.owner == client
                && matches!(w.visible_since, Some(since) if since <= visible_since_at_most)
        })
    }

    /// Windows in bottom-to-top stacking order.
    pub fn stacking_order(&self) -> &[WindowId] {
        &self.stacking
    }

    /// All windows owned by `client`.
    pub fn windows_of(&self, client: ClientId) -> impl Iterator<Item = &Window> {
        self.windows_by_id().filter(move |w| w.owner == client)
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Recomputes `visible_since` for every window after a structural
    /// change at `now`. A window newly visible starts its clock at `now`;
    /// a window that stops being visible loses it.
    pub fn recompute_visibility(&mut self, now: Timestamp) {
        let order = self.stacking.clone();
        for (index, id) in order.iter().enumerate() {
            let Some(window) = self.window(*id) else {
                continue;
            };
            let visible = if !window.mapped || window.rect.area() == 0 {
                false
            } else {
                let covers: Vec<Rect> = order[index + 1..]
                    .iter()
                    .filter_map(|above| self.window(*above))
                    .filter(|w| w.mapped)
                    .map(|w| w.rect)
                    .collect();
                window.rect.coverage_by(&covers) <= OCCLUSION_LIMIT
            };
            let window = self.window_mut(*id).expect("exists");
            window.visible_since = match (visible, window.visible_since) {
                (true, Some(since)) => Some(since),
                (true, None) => Some(now),
                (false, _) => None,
            };
        }
    }
}

mod pack {
    //! Snapshot codec for the window tree. The tree encodes as the
    //! `BTreeMap<WindowId, Window>` layout it historically used (count,
    //! then id-sorted `(id, window)` pairs), byte for byte, so state
    //! hashes and committed snapshots are unaffected by the arena; the
    //! slab and dense id index are rebuilt on decode.

    use std::collections::BTreeMap;

    use overhaul_sim::{impl_pack, impl_pack_newtype, Dec, Enc, Pack, SnapshotError};

    use super::{Window, WindowId, WindowTree};

    impl_pack_newtype!(WindowId, u64);
    impl_pack!(Window {
        id,
        owner,
        rect,
        mapped,
        visible_since,
        pixels,
        properties
    });

    impl Pack for WindowTree {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u64(self.arena.len() as u64);
            for window in self.windows_by_id() {
                window.id.pack(enc);
                window.pack(enc);
            }
            self.stacking.pack(enc);
            enc.put_u64(self.next);
        }

        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            let windows = BTreeMap::<WindowId, Window>::unpack(dec)?;
            let stacking = Vec::<WindowId>::unpack(dec)?;
            let next = dec.take_u64()?;
            let mut tree = WindowTree {
                stacking,
                next,
                ..WindowTree::default()
            };
            for (id, window) in windows {
                if id != window.id || id.as_raw() == 0 || id.as_raw() > next {
                    return Err(SnapshotError::BadValue("window id"));
                }
                tree.install(window);
            }
            Ok(tree)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn client(n: u32) -> ClientId {
        ClientId::from_raw(n)
    }

    #[test]
    fn created_window_is_unmapped_and_invisible() {
        let mut tree = WindowTree::new();
        let w = tree.create(client(1), Rect::new(0, 0, 100, 100));
        assert!(!tree.get(w).unwrap().mapped());
        assert!(!tree.is_visible(w));
    }

    #[test]
    fn map_makes_visible_and_starts_clock() {
        let mut tree = WindowTree::new();
        let w = tree.create(client(1), Rect::new(0, 0, 100, 100));
        tree.map(w, ts(40)).unwrap();
        assert_eq!(tree.get(w).unwrap().visible_since(), Some(ts(40)));
    }

    #[test]
    fn full_occlusion_clears_visibility() {
        let mut tree = WindowTree::new();
        let below = tree.create(client(1), Rect::new(0, 0, 100, 100));
        let above = tree.create(client(2), Rect::new(0, 0, 100, 100));
        tree.map(below, ts(0)).unwrap();
        tree.map(above, ts(10)).unwrap();
        assert!(
            !tree.is_visible(below),
            "fully covered window is not visible"
        );
        assert!(tree.is_visible(above));
    }

    #[test]
    fn partial_occlusion_below_limit_keeps_visibility() {
        let mut tree = WindowTree::new();
        let below = tree.create(client(1), Rect::new(0, 0, 100, 100));
        let above = tree.create(client(2), Rect::new(0, 0, 40, 100)); // 40% cover
        tree.map(below, ts(0)).unwrap();
        tree.map(above, ts(10)).unwrap();
        assert!(tree.is_visible(below));
        assert_eq!(
            tree.get(below).unwrap().visible_since(),
            Some(ts(0)),
            "visibility clock must not reset while still visible"
        );
    }

    #[test]
    fn raise_restores_visibility_with_fresh_clock() {
        let mut tree = WindowTree::new();
        let a = tree.create(client(1), Rect::new(0, 0, 100, 100));
        let b = tree.create(client(2), Rect::new(0, 0, 100, 100));
        tree.map(a, ts(0)).unwrap();
        tree.map(b, ts(10)).unwrap();
        assert!(!tree.is_visible(a));
        tree.raise(a, ts(500)).unwrap();
        assert_eq!(
            tree.get(a).unwrap().visible_since(),
            Some(ts(500)),
            "clock restarts"
        );
        assert!(!tree.is_visible(b));
    }

    #[test]
    fn topmost_at_honors_stacking_and_mapping() {
        let mut tree = WindowTree::new();
        let a = tree.create(client(1), Rect::new(0, 0, 100, 100));
        let b = tree.create(client(2), Rect::new(50, 50, 100, 100));
        tree.map(a, ts(0)).unwrap();
        tree.map(b, ts(0)).unwrap();
        assert_eq!(tree.topmost_at(Point::new(60, 60)), Some(b));
        assert_eq!(tree.topmost_at(Point::new(10, 10)), Some(a));
        assert_eq!(tree.topmost_at(Point::new(400, 400)), None);
        tree.unmap(b, ts(1)).unwrap();
        assert_eq!(tree.topmost_at(Point::new(60, 60)), Some(a));
    }

    #[test]
    fn client_stable_window_gate() {
        let mut tree = WindowTree::new();
        let w = tree.create(client(1), Rect::new(0, 0, 10, 10));
        tree.map(w, ts(1000)).unwrap();
        // Needs visible_since <= 500: mapped at 1000, so not stable yet.
        assert!(!tree.client_has_stable_window(client(1), ts(500)));
        assert!(tree.client_has_stable_window(client(1), ts(1000)));
        assert!(tree.client_has_stable_window(client(1), ts(2000)));
    }

    #[test]
    fn put_image_validates_size() {
        let mut tree = WindowTree::new();
        let w = tree.create(client(1), Rect::new(0, 0, 2, 2));
        assert_eq!(tree.put_image(w, vec![1, 2, 3]), Err(XError::BadValue));
        tree.put_image(w, vec![1, 2, 3, 4]).unwrap();
        assert_eq!(tree.get(w).unwrap().pixels(), &[1, 2, 3, 4]);
    }

    #[test]
    fn properties_round_trip_and_delete() {
        let mut tree = WindowTree::new();
        let w = tree.create(client(1), Rect::new(0, 0, 1, 1));
        tree.set_property(w, Atom::new("X"), b"v".to_vec()).unwrap();
        assert_eq!(
            tree.take_property(w, &Atom::new("X"), false).unwrap(),
            Some(b"v".to_vec())
        );
        assert_eq!(
            tree.take_property(w, &Atom::new("X"), true).unwrap(),
            Some(b"v".to_vec())
        );
        assert_eq!(tree.take_property(w, &Atom::new("X"), false).unwrap(), None);
    }

    #[test]
    fn destroy_all_for_client() {
        let mut tree = WindowTree::new();
        tree.create(client(1), Rect::new(0, 0, 1, 1));
        tree.create(client(1), Rect::new(0, 0, 1, 1));
        tree.create(client(2), Rect::new(0, 0, 1, 1));
        assert_eq!(tree.destroy_all_for(client(1), ts(0)), 2);
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn unmapping_occluder_restores_visibility_with_new_clock() {
        let mut tree = WindowTree::new();
        let below = tree.create(client(1), Rect::new(0, 0, 100, 100));
        let above = tree.create(client(2), Rect::new(0, 0, 100, 100));
        tree.map(below, ts(0)).unwrap();
        tree.map(above, ts(10)).unwrap();
        tree.unmap(above, ts(300)).unwrap();
        assert_eq!(tree.get(below).unwrap().visible_since(), Some(ts(300)));
    }

    #[test]
    fn unknown_window_is_bad_window() {
        let mut tree = WindowTree::new();
        assert_eq!(
            tree.map(WindowId::from_raw(99), ts(0)),
            Err(XError::BadWindow)
        );
    }

    #[test]
    fn destroyed_id_stays_dead_after_slot_reuse() {
        let mut tree = WindowTree::new();
        let a = tree.create(client(1), Rect::new(0, 0, 10, 10));
        tree.destroy(a, ts(0)).unwrap();
        // The next create recycles a's arena slot under a new generation...
        let b = tree.create(client(1), Rect::new(0, 0, 10, 10));
        assert_ne!(a, b, "window ids are never reused");
        // ...and the dead id must not resolve to the recycled slot.
        assert_eq!(tree.get(a).err(), Some(XError::BadWindow));
        assert!(tree.get(b).is_ok());
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn pack_layout_matches_legacy_btreemap_encoding() {
        use overhaul_sim::{Dec, Enc, Pack};

        let mut tree = WindowTree::new();
        let a = tree.create(client(1), Rect::new(0, 0, 4, 4));
        let b = tree.create(client(2), Rect::new(1, 1, 4, 4));
        let c = tree.create(client(1), Rect::new(2, 2, 4, 4));
        tree.map(a, ts(5)).unwrap();
        tree.map(c, ts(7)).unwrap();
        tree.raise(a, ts(9)).unwrap();
        // Churn so the arena's slot order diverges from id order.
        tree.destroy(b, ts(11)).unwrap();
        let d = tree.create(client(3), Rect::new(3, 3, 4, 4));
        tree.set_property(d, Atom::new("N"), b"x".to_vec()).unwrap();

        let mut legacy_windows = BTreeMap::new();
        for w in tree.windows_by_id() {
            legacy_windows.insert(w.id, w.clone());
        }
        let mut legacy = Enc::new();
        legacy_windows.pack(&mut legacy);
        tree.stacking.pack(&mut legacy);
        legacy.put_u64(tree.next);

        let mut current = Enc::new();
        tree.pack(&mut current);
        assert_eq!(current.bytes(), legacy.bytes());

        let mut dec = Dec::new(current.bytes());
        let restored = WindowTree::unpack(&mut dec).expect("decode");
        dec.finish().expect("no trailing bytes");
        assert_eq!(restored.len(), tree.len());
        assert_eq!(restored.stacking_order(), tree.stacking_order());
        assert_eq!(restored.get(a).unwrap().visible_since(), Some(ts(5)));
        assert_eq!(
            restored.get(d).unwrap().property(&Atom::new("N")),
            Some(&b"x"[..])
        );
        assert_eq!(restored.get(b).err(), Some(XError::BadWindow));
        // Re-encoding the rebuilt tree is a fixed point.
        let mut again = Enc::new();
        restored.pack(&mut again);
        assert_eq!(again.bytes(), current.bytes());
    }
}
