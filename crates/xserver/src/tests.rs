//! Integration-style tests for the X server's Overhaul enhancements,
//! using a mock monitor link in place of the kernel.

use overhaul_sim::{AuditCategory, Clock, Pid, SimDuration, Timestamp};

use crate::geometry::{Point, Rect};
use crate::overlay::Alert;
use crate::protocol::{
    Atom, ClientId, DisplayOp, InputPayload, MonitorLink, Reply, Request, XError, XEvent,
};
use crate::window::WindowId;
use crate::{XConfig, XServer};

/// A scriptable stand-in for the kernel permission monitor.
#[derive(Debug, Default)]
struct MockLink {
    grant: bool,
    notifications: Vec<(Pid, Timestamp)>,
    queries: Vec<(Pid, DisplayOp, Timestamp)>,
}

impl MockLink {
    fn granting() -> Self {
        MockLink {
            grant: true,
            ..MockLink::default()
        }
    }

    fn denying() -> Self {
        MockLink::default()
    }
}

impl MonitorLink for MockLink {
    fn notify_interaction(&mut self, pid: Pid, at: Timestamp) {
        self.notifications.push((pid, at));
    }

    fn query(&mut self, pid: Pid, op: DisplayOp, at: Timestamp) -> bool {
        self.queries.push((pid, op, at));
        self.grant
    }
}

struct Rig {
    x: XServer,
    clock: Clock,
}

impl Rig {
    fn new() -> Self {
        let clock = Clock::new();
        let x = XServer::new(clock.clone(), XConfig::default());
        Rig { x, clock }
    }

    fn baseline() -> Self {
        let clock = Clock::new();
        let x = XServer::new(clock.clone(), XConfig::baseline());
        Rig { x, clock }
    }

    fn client(&mut self, pid: u32) -> ClientId {
        self.x.connect_client(Pid::from_raw(pid))
    }

    /// Creates and maps a window, then waits out the clickjacking
    /// visibility threshold so clicks on it are trusted.
    fn stable_window(&mut self, client: ClientId, rect: Rect) -> WindowId {
        let window = match self
            .x
            .request(
                client,
                Request::CreateWindow { rect },
                &mut MockLink::granting(),
            )
            .unwrap()
        {
            Reply::Window(w) => w,
            other => panic!("unexpected reply {other:?}"),
        };
        self.x
            .request(
                client,
                Request::MapWindow { window },
                &mut MockLink::granting(),
            )
            .unwrap();
        self.clock.advance(SimDuration::from_millis(600));
        window
    }
}

// ------------------------------------------------------------ input path

#[test]
fn hardware_click_delivers_event_and_notifies() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    let w = rig.stable_window(c, Rect::new(0, 0, 100, 100));
    let mut link = MockLink::granting();
    assert_eq!(rig.x.hardware_click(Point::new(5, 5), &mut link), Some(w));
    assert_eq!(link.notifications.len(), 1);
    assert_eq!(link.notifications[0].0, Pid::from_raw(10));
    let events = rig.x.drain_events(c).unwrap();
    assert!(matches!(
        events.as_slice(),
        [XEvent::Input {
            synthetic: false,
            payload: InputPayload::Button { x: 5, y: 5 },
            ..
        }]
    ));
}

#[test]
fn hardware_key_goes_to_focus_window() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    let w = rig.stable_window(c, Rect::new(0, 0, 100, 100));
    rig.x
        .request(
            c,
            Request::SetInputFocus { window: w },
            &mut MockLink::granting(),
        )
        .unwrap();
    let mut link = MockLink::granting();
    assert_eq!(rig.x.hardware_key('v', &mut link), Some(w));
    assert_eq!(link.notifications.len(), 1);
}

#[test]
fn key_without_focus_goes_nowhere() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    rig.stable_window(c, Rect::new(0, 0, 10, 10));
    let mut link = MockLink::granting();
    assert_eq!(rig.x.hardware_key('x', &mut link), None);
    assert!(link.notifications.is_empty());
}

#[test]
fn click_outside_all_windows_is_ignored() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    rig.stable_window(c, Rect::new(0, 0, 10, 10));
    let mut link = MockLink::granting();
    assert_eq!(rig.x.hardware_click(Point::new(500, 500), &mut link), None);
    assert!(link.notifications.is_empty());
}

#[test]
fn sendevent_input_is_delivered_but_never_trusted() {
    let mut rig = Rig::new();
    let victim = rig.client(10);
    let attacker = rig.client(66);
    let w = rig.stable_window(victim, Rect::new(0, 0, 100, 100));
    let mut link = MockLink::granting();
    rig.x
        .request(
            attacker,
            Request::SendEvent {
                target: w,
                event: Box::new(XEvent::Input {
                    window: w,
                    payload: InputPayload::Button { x: 1, y: 1 },
                    synthetic: false, // attacker lies; server forces the flag
                }),
            },
            &mut link,
        )
        .unwrap();
    assert!(
        link.notifications.is_empty(),
        "S2: no notification for synthetic input"
    );
    let events = rig.x.drain_events(victim).unwrap();
    assert!(matches!(
        events.as_slice(),
        [XEvent::Input {
            synthetic: true,
            ..
        }]
    ));
    assert_eq!(
        rig.x.audit().count(AuditCategory::SyntheticInputFiltered),
        1
    );
}

#[test]
fn xtest_fake_input_is_tagged_and_untrusted() {
    let mut rig = Rig::new();
    let victim = rig.client(10);
    let attacker = rig.client(66);
    let w = rig.stable_window(victim, Rect::new(0, 0, 100, 100));
    let mut link = MockLink::granting();
    rig.x
        .request(
            attacker,
            Request::XTestFakeInput {
                payload: InputPayload::Key { ch: 'a' },
                target: w,
            },
            &mut link,
        )
        .unwrap();
    assert!(link.notifications.is_empty());
    assert_eq!(
        rig.x.audit().count(AuditCategory::SyntheticInputFiltered),
        1
    );
}

// ------------------------------------------------------------ clickjacking

#[test]
fn click_on_freshly_mapped_window_is_suppressed() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    let w = match rig
        .x
        .request(
            c,
            Request::CreateWindow {
                rect: Rect::new(0, 0, 100, 100),
            },
            &mut MockLink::granting(),
        )
        .unwrap()
    {
        Reply::Window(w) => w,
        _ => unreachable!(),
    };
    rig.x
        .request(
            c,
            Request::MapWindow { window: w },
            &mut MockLink::granting(),
        )
        .unwrap();
    // Click immediately: window not yet stable.
    let mut link = MockLink::granting();
    rig.x.hardware_click(Point::new(5, 5), &mut link);
    assert!(
        link.notifications.is_empty(),
        "S3: clickjack gate suppressed the notification"
    );
    assert_eq!(
        rig.x.audit().count(AuditCategory::ClickjackingSuppressed),
        1
    );
    // Event still delivered (only the notification is withheld).
    assert_eq!(rig.x.drain_events(c).unwrap().len(), 1);
}

#[test]
fn popup_overlay_attack_raised_window_is_not_stable() {
    let mut rig = Rig::new();
    let victim = rig.client(10);
    let attacker = rig.client(66);
    let _legit = rig.stable_window(victim, Rect::new(0, 0, 100, 100));
    // Attacker maps an invisible (unmapped) window, then pops it over the
    // victim right before the user's click lands.
    let trap = match rig
        .x
        .request(
            attacker,
            Request::CreateWindow {
                rect: Rect::new(0, 0, 100, 100),
            },
            &mut MockLink::granting(),
        )
        .unwrap()
    {
        Reply::Window(w) => w,
        _ => unreachable!(),
    };
    rig.x
        .request(
            attacker,
            Request::MapWindow { window: trap },
            &mut MockLink::granting(),
        )
        .unwrap();
    let mut link = MockLink::granting();
    let hit = rig.x.hardware_click(Point::new(5, 5), &mut link);
    assert_eq!(hit, Some(trap), "the trap window steals the click");
    assert!(
        link.notifications.is_empty(),
        "but gains no interaction credit"
    );
}

#[test]
fn occluded_window_loses_stability() {
    let mut rig = Rig::new();
    let victim = rig.client(10);
    let attacker = rig.client(66);
    let v = rig.stable_window(victim, Rect::new(0, 0, 100, 100));
    let _cover = rig.stable_window(attacker, Rect::new(0, 0, 100, 100));
    // Victim raises its window back and is clicked immediately: its
    // visibility clock restarted when raised, so it is not stable yet.
    rig.x
        .request(
            victim,
            Request::RaiseWindow { window: v },
            &mut MockLink::granting(),
        )
        .unwrap();
    let mut link = MockLink::granting();
    rig.x.hardware_click(Point::new(5, 5), &mut link);
    assert!(link.notifications.is_empty());
}

// ------------------------------------------------------------ screen capture

#[test]
fn get_image_of_own_window_needs_no_query() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    let w = rig.stable_window(c, Rect::new(0, 0, 4, 4));
    let mut link = MockLink::denying();
    let reply = rig
        .x
        .request(c, Request::GetImage { window: Some(w) }, &mut link)
        .unwrap();
    assert!(matches!(reply, Reply::Image(_)));
    assert!(link.queries.is_empty());
}

#[test]
fn root_capture_requires_grant_and_alerts() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    rig.stable_window(c, Rect::new(0, 0, 4, 4));
    let mut link = MockLink::granting();
    let reply = rig
        .x
        .request(c, Request::GetImage { window: None }, &mut link)
        .unwrap();
    assert!(matches!(reply, Reply::Image(_)));
    assert_eq!(link.queries.len(), 1);
    assert_eq!(link.queries[0].1, DisplayOp::Screen);
    assert_eq!(rig.x.alerts().shown_count(), 1);
    assert!(rig.x.alerts().history()[0].granted);
}

#[test]
fn root_capture_denied_shows_blocked_alert() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    rig.stable_window(c, Rect::new(0, 0, 4, 4));
    let mut link = MockLink::denying();
    assert_eq!(
        rig.x
            .request(c, Request::GetImage { window: None }, &mut link),
        Err(XError::BadAccess)
    );
    let alert = &rig.x.alerts().history()[0];
    assert!(!alert.granted);
    assert!(alert.render().contains("was blocked from"));
}

#[test]
fn xshm_get_image_takes_the_same_path() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    rig.stable_window(c, Rect::new(0, 0, 4, 4));
    let mut link = MockLink::denying();
    assert_eq!(
        rig.x
            .request(c, Request::XShmGetImage { window: None }, &mut link),
        Err(XError::BadAccess)
    );
}

#[test]
fn foreign_window_capture_is_mediated() {
    let mut rig = Rig::new();
    let victim = rig.client(10);
    let spy = rig.client(66);
    let vw = rig.stable_window(victim, Rect::new(0, 0, 4, 4));
    let mut link = MockLink::denying();
    assert_eq!(
        rig.x
            .request(spy, Request::GetImage { window: Some(vw) }, &mut link),
        Err(XError::BadAccess)
    );
    assert_eq!(link.queries.len(), 1);
}

#[test]
fn copy_area_within_own_windows_is_free() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    let a = rig.stable_window(c, Rect::new(0, 0, 4, 4));
    let b = rig.stable_window(c, Rect::new(10, 0, 4, 4));
    let mut link = MockLink::denying();
    rig.x
        .request(
            c,
            Request::CopyArea {
                src: Some(a),
                dst: b,
            },
            &mut link,
        )
        .unwrap();
    assert!(link.queries.is_empty(), "same-owner copy needs no check");
}

#[test]
fn copy_area_from_foreign_window_is_mediated() {
    let mut rig = Rig::new();
    let victim = rig.client(10);
    let spy = rig.client(66);
    let vw = rig.stable_window(victim, Rect::new(0, 0, 4, 4));
    let sw = rig.stable_window(spy, Rect::new(10, 0, 4, 4));
    let mut link = MockLink::denying();
    assert_eq!(
        rig.x.request(
            spy,
            Request::CopyArea {
                src: Some(vw),
                dst: sw
            },
            &mut link
        ),
        Err(XError::BadAccess)
    );
    // Granted path actually copies the pixels.
    let mut granting = MockLink::granting();
    rig.x
        .request(
            spy,
            Request::CopyPlane {
                src: Some(vw),
                dst: sw,
            },
            &mut granting,
        )
        .unwrap();
    let victim_pixels = match rig.x.request(
        victim,
        Request::GetImage { window: Some(vw) },
        &mut granting,
    ) {
        Ok(Reply::Image(p)) => p,
        other => panic!("unexpected {other:?}"),
    };
    let spy_pixels = match rig
        .x
        .request(spy, Request::GetImage { window: Some(sw) }, &mut granting)
    {
        Ok(Reply::Image(p)) => p,
        other => panic!("unexpected {other:?}"),
    };
    assert_eq!(victim_pixels, spy_pixels);
}

#[test]
fn copy_area_into_foreign_destination_is_bad_match() {
    let mut rig = Rig::new();
    let a = rig.client(1);
    let b = rig.client(2);
    let wa = rig.stable_window(a, Rect::new(0, 0, 4, 4));
    let wb = rig.stable_window(b, Rect::new(10, 0, 4, 4));
    assert_eq!(
        rig.x.request(
            a,
            Request::CopyArea {
                src: Some(wa),
                dst: wb
            },
            &mut MockLink::granting()
        ),
        Err(XError::BadMatch)
    );
}

#[test]
fn composite_root_shows_topmost_window() {
    let mut rig = Rig::new();
    let c = rig.client(10);
    let w = rig.stable_window(c, Rect::new(0, 0, 2, 2));
    rig.x
        .request(
            c,
            Request::PutImage {
                window: w,
                data: vec![9, 9, 9, 9],
            },
            &mut MockLink::granting(),
        )
        .unwrap();
    let mut link = MockLink::granting();
    let root = match rig
        .x
        .request(c, Request::GetImage { window: None }, &mut link)
        .unwrap()
    {
        Reply::Image(p) => p,
        _ => unreachable!(),
    };
    assert_eq!(root[0], 9);
    assert_eq!(root[1], 9);
    let width = rig.x.config().screen.width as usize;
    assert_eq!(root[width], 9, "second row of the window");
    assert_eq!(root[2], 0, "outside the window is background");
}

// ------------------------------------------------------------ clipboard

/// Drives the full Figure 6 protocol between a source and a target client.
fn run_copy_paste(rig: &mut Rig, link_grant: bool) -> Result<Vec<u8>, XError> {
    let source = rig.client(20);
    let target = rig.client(21);
    let sw = rig.stable_window(source, Rect::new(0, 0, 10, 10));
    let tw = rig.stable_window(target, Rect::new(20, 0, 10, 10));
    let mut link = if link_grant {
        MockLink::granting()
    } else {
        MockLink::denying()
    };
    let selection = Atom::clipboard();
    let property = Atom::new("XSEL_DATA");

    // Steps 1–2: copy.
    rig.x.request(
        source,
        Request::SetSelectionOwner {
            selection: selection.clone(),
            window: sw,
        },
        &mut link,
    )?;
    // Steps 5–6: paste.
    rig.x.request(
        target,
        Request::ConvertSelection {
            selection: selection.clone(),
            requestor: tw,
            property: property.clone(),
        },
        &mut link,
    )?;
    // Step 7: the source receives the relayed SelectionRequest.
    let ev = rig
        .x
        .next_event(source)?
        .expect("selection request relayed");
    let (requestor, prop) = match ev {
        XEvent::SelectionRequest {
            requestor,
            property,
            ..
        } => (requestor, property),
        other => panic!("unexpected event {other:?}"),
    };
    // Step 8: source stores the data on the requestor's window.
    rig.x.request(
        source,
        Request::ChangeProperty {
            window: requestor,
            property: prop.clone(),
            data: b"hunter2".to_vec(),
        },
        &mut link,
    )?;
    // Step 9: source asks the server to notify the target.
    rig.x.request(
        source,
        Request::SendEvent {
            target: requestor,
            event: Box::new(XEvent::SelectionNotify {
                selection: selection.clone(),
                property: prop.clone(),
            }),
        },
        &mut link,
    )?;
    // Step 10: target receives SelectionNotify.
    let ev = rig.x.next_event(target)?.expect("selection notify");
    assert!(matches!(ev, XEvent::SelectionNotify { .. }));
    // Steps 11–13: target retrieves and deletes the property.
    match rig.x.request(
        target,
        Request::GetProperty {
            window: tw,
            property: prop,
            delete: true,
        },
        &mut link,
    )? {
        Reply::Property(Some(data)) => Ok(data),
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn full_copy_paste_round_trip_with_grants() {
    let mut rig = Rig::new();
    let data = run_copy_paste(&mut rig, true).unwrap();
    assert_eq!(data, b"hunter2");
    // Two queries: one copy, one paste.
    assert_eq!(rig.x.audit().count(AuditCategory::PermissionGranted), 2);
}

#[test]
fn copy_paste_denied_without_interaction() {
    let mut rig = Rig::new();
    assert_eq!(run_copy_paste(&mut rig, false), Err(XError::BadAccess));
    assert!(rig.x.audit().count(AuditCategory::PermissionDenied) >= 1);
}

#[test]
fn baseline_copy_paste_needs_no_grants() {
    let mut rig = Rig::baseline();
    let data = run_copy_paste(&mut rig, false).unwrap();
    assert_eq!(data, b"hunter2");
}

#[test]
fn paste_after_owner_disconnect_fails_closed() {
    // Regression: a paste brokered after the owning client's connection
    // died (without the full disconnect cleanup running first) used to
    // reuse the stale ownership record — and with it the owner's stale
    // interaction evidence. It must deny and clear the record instead.
    let mut rig = Rig::new();
    let owner = rig.client(20);
    let target = rig.client(21);
    let ow = rig.stable_window(owner, Rect::new(0, 0, 10, 10));
    let tw = rig.stable_window(target, Rect::new(20, 0, 10, 10));
    let mut link = MockLink::granting();
    rig.x
        .request(
            owner,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: ow,
            },
            &mut link,
        )
        .unwrap();
    // Tear down only the connection record (crash-style teardown ordering),
    // leaving the selection table's owner entry stale.
    rig.x.clients.disconnect(owner).unwrap();
    let result = rig.x.request(
        target,
        Request::ConvertSelection {
            selection: Atom::clipboard(),
            requestor: tw,
            property: Atom::new("XSEL_DATA"),
        },
        &mut link,
    );
    assert_eq!(result, Err(XError::BadAccess), "must fail closed");
    assert!(
        rig.x
            .audit()
            .events()
            .iter()
            .any(|e| e.detail.contains("stale owner")),
        "deny is audited with its cause"
    );
    // The stale record is gone: a retry sees "no owner" and gets the
    // ordinary ICCCM empty notify, not a brokered transfer.
    rig.x
        .request(
            target,
            Request::ConvertSelection {
                selection: Atom::clipboard(),
                requestor: tw,
                property: Atom::new("XSEL_DATA"),
            },
            &mut link,
        )
        .unwrap();
    let ev = rig.x.next_event(target).unwrap().expect("empty notify");
    assert!(
        matches!(ev, XEvent::SelectionNotify { property, .. } if property == Atom::new("NONE"))
    );
}

#[test]
fn paste_after_owner_window_destroyed_fails_closed() {
    let mut rig = Rig::new();
    let owner = rig.client(20);
    let target = rig.client(21);
    let ow = rig.stable_window(owner, Rect::new(0, 0, 10, 10));
    let tw = rig.stable_window(target, Rect::new(20, 0, 10, 10));
    let mut link = MockLink::granting();
    rig.x
        .request(
            owner,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: ow,
            },
            &mut link,
        )
        .unwrap();
    // The owner destroys the window it asserted ownership through: the
    // evidence backing the ownership is gone.
    rig.x
        .request(owner, Request::DestroyWindow { window: ow }, &mut link)
        .unwrap();
    let result = rig.x.request(
        target,
        Request::ConvertSelection {
            selection: Atom::clipboard(),
            requestor: tw,
            property: Atom::new("XSEL_DATA"),
        },
        &mut link,
    );
    assert_eq!(result, Err(XError::BadAccess), "must fail closed");
}

#[test]
fn forged_selection_request_is_blocked() {
    let mut rig = Rig::new();
    let owner = rig.client(20);
    let attacker = rig.client(66);
    let ow = rig.stable_window(owner, Rect::new(0, 0, 10, 10));
    let aw = rig.stable_window(attacker, Rect::new(20, 0, 10, 10));
    let mut link = MockLink::granting();
    rig.x
        .request(
            owner,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: ow,
            },
            &mut link,
        )
        .unwrap();
    // Attacker skips ConvertSelection (which would be checked) and sends a
    // SelectionRequest straight to the owner via SendEvent.
    let result = rig.x.request(
        attacker,
        Request::SendEvent {
            target: ow,
            event: Box::new(XEvent::SelectionRequest {
                selection: Atom::clipboard(),
                requestor: aw,
                property: Atom::new("LOOT"),
            }),
        },
        &mut link,
    );
    assert_eq!(result, Err(XError::BadAccess));
    assert_eq!(rig.x.audit().count(AuditCategory::ProtocolAttackBlocked), 1);
    assert_eq!(
        rig.x.drain_events(owner).unwrap().len(),
        0,
        "owner never hears about it"
    );
}

#[test]
fn forged_selection_notify_is_blocked() {
    let mut rig = Rig::new();
    let victim = rig.client(20);
    let attacker = rig.client(66);
    let vw = rig.stable_window(victim, Rect::new(0, 0, 10, 10));
    let mut link = MockLink::granting();
    let result = rig.x.request(
        attacker,
        Request::SendEvent {
            target: vw,
            event: Box::new(XEvent::SelectionNotify {
                selection: Atom::clipboard(),
                property: Atom::new("FAKE"),
            }),
        },
        &mut link,
    );
    assert_eq!(result, Err(XError::BadAccess));
}

#[test]
fn property_snooping_on_in_flight_transfer_is_blocked() {
    let mut rig = Rig::new();
    let source = rig.client(20);
    let target = rig.client(21);
    let spy = rig.client(66);
    let sw = rig.stable_window(source, Rect::new(0, 0, 10, 10));
    let tw = rig.stable_window(target, Rect::new(20, 0, 10, 10));
    rig.stable_window(spy, Rect::new(40, 0, 10, 10));
    let mut link = MockLink::granting();
    let property = Atom::new("XSEL_DATA");
    // Spy watches the target window's properties ahead of time.
    rig.x
        .request(spy, Request::SelectPropertyEvents { window: tw }, &mut link)
        .unwrap();
    rig.x
        .request(
            source,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: sw,
            },
            &mut link,
        )
        .unwrap();
    rig.x
        .request(
            target,
            Request::ConvertSelection {
                selection: Atom::clipboard(),
                requestor: tw,
                property: property.clone(),
            },
            &mut link,
        )
        .unwrap();
    rig.x.next_event(source).unwrap(); // SelectionRequest
    rig.x
        .request(
            source,
            Request::ChangeProperty {
                window: tw,
                property: property.clone(),
                data: b"secret".to_vec(),
            },
            &mut link,
        )
        .unwrap();
    // The spy's PropertyNotify was suppressed...
    assert_eq!(rig.x.drain_events(spy).unwrap().len(), 0);
    // ...and a direct read of the in-flight property is denied.
    assert_eq!(
        rig.x.request(
            spy,
            Request::GetProperty {
                window: tw,
                property: property.clone(),
                delete: false
            },
            &mut link
        ),
        Err(XError::BadAccess)
    );
    // The legitimate target still completes the paste.
    match rig
        .x
        .request(
            target,
            Request::GetProperty {
                window: tw,
                property,
                delete: true,
            },
            &mut link,
        )
        .unwrap()
    {
        Reply::Property(Some(data)) => assert_eq!(data, b"secret"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn baseline_property_snooping_succeeds() {
    // The same attack on a stock X server works — this asymmetry is what
    // the §V-D unprotected machine demonstrates.
    let mut rig = Rig::baseline();
    let source = rig.client(20);
    let target = rig.client(21);
    let spy = rig.client(66);
    let sw = rig.stable_window(source, Rect::new(0, 0, 10, 10));
    let tw = rig.stable_window(target, Rect::new(20, 0, 10, 10));
    let mut link = MockLink::denying();
    let property = Atom::new("XSEL_DATA");
    rig.x
        .request(
            source,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: sw,
            },
            &mut link,
        )
        .unwrap();
    rig.x
        .request(
            target,
            Request::ConvertSelection {
                selection: Atom::clipboard(),
                requestor: tw,
                property: property.clone(),
            },
            &mut link,
        )
        .unwrap();
    rig.x.next_event(source).unwrap();
    rig.x
        .request(
            source,
            Request::ChangeProperty {
                window: tw,
                property: property.clone(),
                data: b"secret".to_vec(),
            },
            &mut link,
        )
        .unwrap();
    match rig
        .x
        .request(
            spy,
            Request::GetProperty {
                window: tw,
                property,
                delete: false,
            },
            &mut link,
        )
        .unwrap()
    {
        Reply::Property(Some(data)) => assert_eq!(data, b"secret", "stock X leaks the clipboard"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn selection_owner_change_sends_clear_to_old_owner() {
    let mut rig = Rig::new();
    let a = rig.client(1);
    let b = rig.client(2);
    let wa = rig.stable_window(a, Rect::new(0, 0, 10, 10));
    let wb = rig.stable_window(b, Rect::new(20, 0, 10, 10));
    let mut link = MockLink::granting();
    rig.x
        .request(
            a,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: wa,
            },
            &mut link,
        )
        .unwrap();
    rig.x
        .request(
            b,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: wb,
            },
            &mut link,
        )
        .unwrap();
    let events = rig.x.drain_events(a).unwrap();
    assert!(matches!(events.as_slice(), [XEvent::SelectionClear { .. }]));
    match rig
        .x
        .request(
            a,
            Request::GetSelectionOwner {
                selection: Atom::clipboard(),
            },
            &mut link,
        )
        .unwrap()
    {
        Reply::SelectionOwner(owner) => assert_eq!(owner, Some(b)),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn paste_with_no_owner_yields_none_property() {
    let mut rig = Rig::new();
    let c = rig.client(1);
    let w = rig.stable_window(c, Rect::new(0, 0, 10, 10));
    let mut link = MockLink::granting();
    rig.x
        .request(
            c,
            Request::ConvertSelection {
                selection: Atom::primary(),
                requestor: w,
                property: Atom::new("P"),
            },
            &mut link,
        )
        .unwrap();
    let ev = rig.x.next_event(c).unwrap().unwrap();
    assert!(
        matches!(ev, XEvent::SelectionNotify { property, .. } if property == Atom::new("NONE"))
    );
}

// ------------------------------------------------------------ misc

#[test]
fn disconnect_cleans_up_windows_and_selections() {
    let mut rig = Rig::new();
    let c = rig.client(1);
    let w = rig.stable_window(c, Rect::new(0, 0, 10, 10));
    let mut link = MockLink::granting();
    rig.x
        .request(
            c,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: w,
            },
            &mut link,
        )
        .unwrap();
    rig.x.disconnect_client(c).unwrap();
    assert!(rig.x.windows().is_empty());
    let c2 = rig.client(2);
    match rig
        .x
        .request(
            c2,
            Request::GetSelectionOwner {
                selection: Atom::clipboard(),
            },
            &mut link,
        )
        .unwrap()
    {
        Reply::SelectionOwner(owner) => assert_eq!(owner, None),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn request_from_unknown_client_is_bad_client() {
    let mut rig = Rig::new();
    let ghost = ClientId::from_raw(99);
    assert_eq!(
        rig.x.request(
            ghost,
            Request::CreateWindow {
                rect: Rect::new(0, 0, 1, 1)
            },
            &mut MockLink::granting()
        ),
        Err(XError::BadClient)
    );
}

#[test]
fn foreign_window_management_is_bad_match() {
    let mut rig = Rig::new();
    let a = rig.client(1);
    let b = rig.client(2);
    let wa = rig.stable_window(a, Rect::new(0, 0, 10, 10));
    for request in [
        Request::MapWindow { window: wa },
        Request::UnmapWindow { window: wa },
        Request::RaiseWindow { window: wa },
        Request::DestroyWindow { window: wa },
        Request::PutImage {
            window: wa,
            data: vec![0; 100],
        },
    ] {
        assert_eq!(
            rig.x.request(b, request, &mut MockLink::granting()),
            Err(XError::BadMatch)
        );
    }
}

#[test]
fn fake_alert_window_is_distinguishable_from_overlay() {
    let mut rig = Rig::new();
    let attacker = rig.client(66);
    let w = rig.stable_window(attacker, Rect::new(0, 0, 300, 40));
    // The attacker renders something alert-shaped into its own window, but
    // it cannot know the shared secret.
    let fake_text = b"[???] totally-legit is using the mic".to_vec();
    let mut padded = vec![0u8; 300 * 40];
    padded[..fake_text.len()].copy_from_slice(&fake_text);
    rig.x
        .request(
            attacker,
            Request::PutImage {
                window: w,
                data: padded,
            },
            &mut MockLink::granting(),
        )
        .unwrap();
    let real = rig.x.show_alert("skype", "mic", true);
    assert!(Alert::looks_authentic(
        &real.render(),
        rig.x.alerts().secret()
    ));
    assert!(!Alert::looks_authentic(
        "[???] totally-legit is using the mic",
        rig.x.alerts().secret()
    ));
}
