//! Unforgeable permission prompts (the §IV-A alternative policy).
//!
//! The paper deliberately ships *passive alerts*, but notes: "we have
//! implemented and verified that OVERHAUL's security primitives can be
//! used to support such a [prompt-based] security model in a trivial
//! manner, where the trusted output path would be used for displaying an
//! unforgeable prompt, and the trusted input path to verify user
//! interaction with it." This module is that implementation:
//!
//! * prompts render on the overlay layer (with the visual shared secret),
//!   so no client can draw a convincing fake or obscure a real one;
//! * the answer arrives as a *hardware* input event routed to the overlay
//!   before ordinary dispatch, so no client can answer programmatically
//!   (`SendEvent`/XTest events never reach the prompt surface).

use std::fmt;

use overhaul_sim::Timestamp;
use serde::{Deserialize, Serialize};

/// Identifier of a prompt instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PromptId(u64);

impl PromptId {
    /// The raw value.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PromptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prompt:{}", self.0)
    }
}

/// Lifecycle of a prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PromptState {
    /// Waiting for the user.
    Pending,
    /// The user allowed the access.
    Approved,
    /// The user denied the access (or it timed out).
    Denied,
}

/// One permission prompt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prompt {
    /// Prompt id.
    pub id: PromptId,
    /// Requesting process name.
    pub process: String,
    /// The operation being requested (paper notation: `mic`, `cam`, ...).
    pub op: String,
    /// When the prompt appeared.
    pub asked_at: Timestamp,
    /// Current state.
    pub state: PromptState,
    /// The visual shared secret embedded in the rendering.
    pub secret: String,
}

impl Prompt {
    /// The on-screen text of the prompt.
    pub fn render(&self) -> String {
        format!(
            "[{}] Allow {} to access the {}? (hardware Y/N)",
            self.secret, self.process, self.op
        )
    }
}

/// The overlay prompt surface. At most one prompt is pending at a time
/// (queued requests would be answered one by one in a real system; the
/// harness never needs more than one in flight).
/// ```
/// use overhaul_sim::Timestamp;
/// use overhaul_xserver::prompt::{PromptState, PromptSurface};
///
/// let mut prompts = PromptSurface::new("cat.png");
/// prompts.ask("skype", "cam", Timestamp::from_millis(1)).unwrap();
/// let resolved = prompts.answer(true).unwrap();
/// assert_eq!(resolved.state, PromptState::Approved);
/// ```
#[derive(Debug, Clone)]
pub struct PromptSurface {
    secret: String,
    next: u64,
    pending: Option<Prompt>,
    history: Vec<Prompt>,
}

impl PromptSurface {
    /// Creates a surface with the user's shared secret.
    pub fn new(secret: impl Into<String>) -> Self {
        PromptSurface {
            secret: secret.into(),
            next: 0,
            pending: None,
            history: Vec::new(),
        }
    }

    /// Displays a prompt. Returns `None` if another prompt is already
    /// pending (the caller should treat that as a deny and retry later).
    pub fn ask(
        &mut self,
        process: impl Into<String>,
        op: impl Into<String>,
        now: Timestamp,
    ) -> Option<PromptId> {
        if self.pending.is_some() {
            return None;
        }
        self.next += 1;
        let id = PromptId(self.next);
        self.pending = Some(Prompt {
            id,
            process: process.into(),
            op: op.into(),
            asked_at: now,
            state: PromptState::Pending,
            secret: self.secret.clone(),
        });
        Some(id)
    }

    /// The prompt currently awaiting an answer.
    pub fn pending(&self) -> Option<&Prompt> {
        self.pending.as_ref()
    }

    /// Resolves the pending prompt with a *hardware-verified* user answer.
    /// Returns the resolved prompt, or `None` if nothing was pending.
    pub fn answer(&mut self, approve: bool) -> Option<Prompt> {
        let mut prompt = self.pending.take()?;
        prompt.state = if approve {
            PromptState::Approved
        } else {
            PromptState::Denied
        };
        self.history.push(prompt.clone());
        Some(prompt)
    }

    /// Every resolved prompt, oldest first.
    pub fn history(&self) -> &[Prompt] {
        &self.history
    }

    /// Number of prompts ever asked (resolved + pending).
    pub fn asked_count(&self) -> usize {
        self.history.len() + usize::from(self.pending.is_some())
    }
}

mod pack {
    //! Snapshot codec for the overlay prompt surface.

    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
    use overhaul_sim::{impl_pack, impl_pack_newtype};

    use super::{Prompt, PromptId, PromptState, PromptSurface};

    impl_pack_newtype!(PromptId, u64);

    impl Pack for PromptState {
        fn pack(&self, enc: &mut Enc) {
            enc.put_u8(match self {
                PromptState::Pending => 0,
                PromptState::Approved => 1,
                PromptState::Denied => 2,
            });
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => PromptState::Pending,
                1 => PromptState::Approved,
                2 => PromptState::Denied,
                _ => return Err(SnapshotError::BadValue("prompt state")),
            })
        }
    }

    impl_pack!(Prompt {
        id,
        process,
        op,
        asked_at,
        state,
        secret
    });
    impl_pack!(PromptSurface {
        secret,
        next,
        pending,
        history
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surface() -> PromptSurface {
        PromptSurface::new("cat.png")
    }

    #[test]
    fn ask_answer_round_trip() {
        let mut s = surface();
        let id = s.ask("skype", "cam", Timestamp::from_millis(5)).unwrap();
        assert_eq!(s.pending().unwrap().id, id);
        let resolved = s.answer(true).unwrap();
        assert_eq!(resolved.state, PromptState::Approved);
        assert!(s.pending().is_none());
        assert_eq!(s.history().len(), 1);
    }

    #[test]
    fn deny_answer() {
        let mut s = surface();
        s.ask("spy", "mic", Timestamp::ZERO).unwrap();
        assert_eq!(s.answer(false).unwrap().state, PromptState::Denied);
    }

    #[test]
    fn only_one_prompt_pending() {
        let mut s = surface();
        s.ask("a", "cam", Timestamp::ZERO).unwrap();
        assert_eq!(s.ask("b", "mic", Timestamp::ZERO), None);
        s.answer(true);
        assert!(s.ask("b", "mic", Timestamp::ZERO).is_some());
    }

    #[test]
    fn answer_without_prompt_is_none() {
        let mut s = surface();
        assert_eq!(s.answer(true), None);
    }

    #[test]
    fn rendering_embeds_secret() {
        let mut s = surface();
        s.ask("skype", "cam", Timestamp::ZERO).unwrap();
        let text = s.pending().unwrap().render();
        assert!(text.starts_with("[cat.png]"));
        assert!(text.contains("skype"));
        assert!(text.contains("cam"));
    }

    #[test]
    fn asked_count_tracks_pending_and_history() {
        let mut s = surface();
        s.ask("a", "cam", Timestamp::ZERO).unwrap();
        assert_eq!(s.asked_count(), 1);
        s.answer(false);
        s.ask("b", "mic", Timestamp::ZERO).unwrap();
        assert_eq!(s.asked_count(), 2);
    }
}
