//! X11 protocol surface: requests, events, errors, and the monitor link.
//!
//! This is the slice of the core X protocol (plus the XTest and MIT-SHM
//! extensions) that Overhaul interposes on, per §IV-A:
//!
//! * input injection: `SendEvent`, `XTestFakeInput`;
//! * display contents: `GetImage`, `XShmGetImage`, `CopyArea`, `CopyPlane`,
//!   `PutImage`;
//! * the ICCCM selection protocol: `SetSelectionOwner`, `ConvertSelection`,
//!   `ChangeProperty`, `GetProperty`, `DeleteProperty`, plus `SendEvent`
//!   for `SelectionNotify`;
//! * window management needed for stacking/visibility: `CreateWindow`,
//!   `MapWindow`, `UnmapWindow`, `RaiseWindow`, `DestroyWindow`,
//!   `SetInputFocus`.

use std::fmt;

use overhaul_sim::{Pid, Timestamp};
use serde::{Deserialize, Serialize};

use crate::geometry::Rect;
use crate::window::WindowId;

/// Identifier of a connected X client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ClientId(u32);

impl ClientId {
    /// Creates a `ClientId` from its raw value.
    pub const fn from_raw(raw: u32) -> Self {
        ClientId(raw)
    }

    /// The raw value.
    pub const fn as_raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client:{}", self.0)
    }
}

/// An interned atom name (property names, selection names).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Atom(String);

impl Atom {
    /// Creates an atom.
    pub fn new(name: impl Into<String>) -> Self {
        Atom(name.into())
    }

    /// The atom's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// The CLIPBOARD selection.
    pub fn clipboard() -> Atom {
        Atom::new("CLIPBOARD")
    }

    /// The PRIMARY selection.
    pub fn primary() -> Atom {
        Atom::new("PRIMARY")
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::new(s)
    }
}

/// A display-resource operation the X server must clear with the kernel
/// permission monitor (`op ∈ {copy, paste, scr}` of the paper's notation;
/// device ops never transit this interface — the kernel mediates those
/// internally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DisplayOp {
    /// Clipboard copy (selection-ownership assertion).
    Copy,
    /// Clipboard paste (selection conversion).
    Paste,
    /// Screen-contents capture.
    Screen,
}

impl fmt::Display for DisplayOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DisplayOp::Copy => "copy",
            DisplayOp::Paste => "paste",
            DisplayOp::Screen => "scr",
        })
    }
}

/// The display manager's channel to the kernel permission monitor.
///
/// In the prototype this is the authenticated netlink socket; the core
/// crate implements it over [`overhaul-kernel`]'s netlink facade, and unit
/// tests substitute mocks.
///
/// [`overhaul-kernel`]: https://docs.rs/overhaul-kernel
pub trait MonitorLink {
    /// Sends an interaction notification `N_{A,t}` for the process owning
    /// the client that just received an authentic hardware input event.
    fn notify_interaction(&mut self, pid: Pid, at: Timestamp);

    /// Sends a permission query `Q_{A,t}` and returns whether the monitor
    /// granted the operation.
    fn query(&mut self, pid: Pid, op: DisplayOp, at: Timestamp) -> bool;
}

/// A no-op link for baseline (non-Overhaul) configurations: everything is
/// granted and nothing is recorded.
#[derive(Debug, Clone, Copy, Default)]
pub struct GrantAllLink;

impl MonitorLink for GrantAllLink {
    fn notify_interaction(&mut self, _pid: Pid, _at: Timestamp) {}

    fn query(&mut self, _pid: Pid, _op: DisplayOp, _at: Timestamp) -> bool {
        true
    }
}

/// A fail-closed link for protected configurations whose channel to the
/// kernel is unavailable (not yet established, or lost to a crash):
/// notifications are dropped and every query is denied. Losing the channel
/// must never widen access.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenyAllLink;

impl MonitorLink for DenyAllLink {
    fn notify_interaction(&mut self, _pid: Pid, _at: Timestamp) {}

    fn query(&mut self, _pid: Pid, _op: DisplayOp, _at: Timestamp) -> bool {
        false
    }
}

/// An input event as delivered to clients.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InputPayload {
    /// A key press (simplified to a character).
    Key {
        /// The key.
        ch: char,
    },
    /// A pointer button press at window-relative coordinates.
    Button {
        /// X within the window.
        x: i32,
        /// Y within the window.
        y: i32,
    },
}

/// An event queued for delivery to a client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum XEvent {
    /// An input event. `synthetic` is the core-protocol `SendEvent` flag:
    /// true for anything not generated by a hardware device.
    Input {
        /// Target window.
        window: WindowId,
        /// Key or button payload.
        payload: InputPayload,
        /// The `send_event` flag.
        synthetic: bool,
    },
    /// The selection owner is asked to convert the selection for a
    /// requestor (step 7 of Figure 6).
    SelectionRequest {
        /// The selection being converted.
        selection: Atom,
        /// Window of the requesting client.
        requestor: WindowId,
        /// Property the data should be written to.
        property: Atom,
    },
    /// The requestor is told the converted data is available
    /// (step 10 of Figure 6).
    SelectionNotify {
        /// The selection.
        selection: Atom,
        /// Property holding the data.
        property: Atom,
    },
    /// A property changed on a window the client is interested in.
    PropertyNotify {
        /// Window whose property changed.
        window: WindowId,
        /// The property.
        property: Atom,
    },
    /// Selection ownership was taken away (new copy supersedes the old).
    SelectionClear {
        /// The selection lost.
        selection: Atom,
    },
}

/// A request from a client to the X server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// Creates an (unmapped) window.
    CreateWindow {
        /// Geometry.
        rect: Rect,
    },
    /// Maps (shows) a window.
    MapWindow {
        /// Target.
        window: WindowId,
    },
    /// Unmaps (hides) a window.
    UnmapWindow {
        /// Target.
        window: WindowId,
    },
    /// Raises a window to the top of the stacking order.
    RaiseWindow {
        /// Target.
        window: WindowId,
    },
    /// Destroys a window.
    DestroyWindow {
        /// Target.
        window: WindowId,
    },
    /// Gives a window keyboard focus.
    SetInputFocus {
        /// Target.
        window: WindowId,
    },
    /// Draws pixel data into the client's own window.
    PutImage {
        /// Target (must be owned by the requestor).
        window: WindowId,
        /// Pixel bytes (row-major, 1 byte per pixel).
        data: Vec<u8>,
    },
    /// Captures the contents of a drawable (core protocol screen capture).
    GetImage {
        /// A window, or `None` for the root window (whole screen).
        window: Option<WindowId>,
    },
    /// MIT-SHM variant of `GetImage`; identical semantics, interposed the
    /// same way.
    XShmGetImage {
        /// A window, or `None` for the root window.
        window: Option<WindowId>,
    },
    /// Copies a region between drawables.
    CopyArea {
        /// Source window, or `None` for the root.
        src: Option<WindowId>,
        /// Destination window (must be owned by the requestor).
        dst: WindowId,
    },
    /// Single-plane variant of `CopyArea`; interposed identically.
    CopyPlane {
        /// Source window, or `None` for the root.
        src: Option<WindowId>,
        /// Destination window.
        dst: WindowId,
    },
    /// Asserts ownership of a selection (step 2 of Figure 6 — a *copy*).
    SetSelectionOwner {
        /// The selection.
        selection: Atom,
        /// The owner's window.
        window: WindowId,
    },
    /// Queries the current owner of a selection.
    GetSelectionOwner {
        /// The selection.
        selection: Atom,
    },
    /// Asks for a selection to be converted into a property on the
    /// requestor's window (step 6 of Figure 6 — a *paste*).
    ConvertSelection {
        /// The selection.
        selection: Atom,
        /// The requestor's window.
        requestor: WindowId,
        /// Property to receive the data.
        property: Atom,
    },
    /// Stores a property on a window (step 8 of Figure 6 when in-flight).
    ChangeProperty {
        /// Target window.
        window: WindowId,
        /// Property name.
        property: Atom,
        /// Data.
        data: Vec<u8>,
    },
    /// Reads (and optionally deletes) a property (steps 11–13 of Figure 6).
    GetProperty {
        /// Target window.
        window: WindowId,
        /// Property name.
        property: Atom,
        /// Delete after reading.
        delete: bool,
    },
    /// Removes a property.
    DeleteProperty {
        /// Target window.
        window: WindowId,
        /// Property name.
        property: Atom,
    },
    /// Subscribes to `PropertyNotify` events on a window.
    SelectPropertyEvents {
        /// Watched window.
        window: WindowId,
    },
    /// Core-protocol `SendEvent`: asks the server to deliver `event` to
    /// `target`'s owner as if it came from the server. Always flagged
    /// synthetic; filtered when it would break the selection protocol.
    SendEvent {
        /// Target window.
        target: WindowId,
        /// The event to deliver.
        event: Box<XEvent>,
    },
    /// XTest extension fake input: injects an input event for testing.
    XTestFakeInput {
        /// Key or button payload.
        payload: InputPayload,
        /// Screen location for button events / focus target for keys.
        target: WindowId,
    },
}

/// A successful reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reply {
    /// Nothing to return.
    Ok,
    /// A new window id.
    Window(WindowId),
    /// Captured or copied pixel data.
    Image(Vec<u8>),
    /// The owner of a selection, if any.
    SelectionOwner(Option<ClientId>),
    /// Property contents, if present.
    Property(Option<Vec<u8>>),
}

/// An X protocol error returned to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum XError {
    /// `BadWindow`: unknown window id.
    BadWindow,
    /// `BadAccess`: the operation was denied — this is what an Overhaul
    /// deny looks like to an unmodified client.
    BadAccess,
    /// `BadMatch`: structurally invalid request (e.g. drawing into a
    /// foreign window).
    BadMatch,
    /// `BadAtom`: missing property.
    BadAtom,
    /// `BadValue`: malformed request contents.
    BadValue,
    /// Unknown client.
    BadClient,
}

impl fmt::Display for XError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            XError::BadWindow => "bad window",
            XError::BadAccess => "bad access",
            XError::BadMatch => "bad match",
            XError::BadAtom => "bad atom",
            XError::BadValue => "bad value",
            XError::BadClient => "bad client",
        })
    }
}

impl std::error::Error for XError {}

mod pack {
    //! Snapshot codec for the protocol types that appear in persistent
    //! server state (client event queues, selection tables) or in recorded
    //! event logs ([`Request`]). [`Reply`] and [`XError`] are transient
    //! wire values and are never serialized.

    use overhaul_sim::impl_pack_newtype;
    use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};

    use super::{Atom, ClientId, InputPayload, Request, XEvent};

    impl_pack_newtype!(ClientId, u32);
    impl_pack_newtype!(Atom, String);

    impl Pack for InputPayload {
        fn pack(&self, enc: &mut Enc) {
            match self {
                InputPayload::Key { ch } => {
                    enc.put_u8(0);
                    ch.pack(enc);
                }
                InputPayload::Button { x, y } => {
                    enc.put_u8(1);
                    x.pack(enc);
                    y.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => InputPayload::Key {
                    ch: Pack::unpack(dec)?,
                },
                1 => InputPayload::Button {
                    x: Pack::unpack(dec)?,
                    y: Pack::unpack(dec)?,
                },
                _ => return Err(SnapshotError::BadValue("input payload")),
            })
        }
    }

    impl Pack for XEvent {
        fn pack(&self, enc: &mut Enc) {
            match self {
                XEvent::Input {
                    window,
                    payload,
                    synthetic,
                } => {
                    enc.put_u8(0);
                    window.pack(enc);
                    payload.pack(enc);
                    synthetic.pack(enc);
                }
                XEvent::SelectionRequest {
                    selection,
                    requestor,
                    property,
                } => {
                    enc.put_u8(1);
                    selection.pack(enc);
                    requestor.pack(enc);
                    property.pack(enc);
                }
                XEvent::SelectionNotify {
                    selection,
                    property,
                } => {
                    enc.put_u8(2);
                    selection.pack(enc);
                    property.pack(enc);
                }
                XEvent::PropertyNotify { window, property } => {
                    enc.put_u8(3);
                    window.pack(enc);
                    property.pack(enc);
                }
                XEvent::SelectionClear { selection } => {
                    enc.put_u8(4);
                    selection.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => XEvent::Input {
                    window: Pack::unpack(dec)?,
                    payload: Pack::unpack(dec)?,
                    synthetic: Pack::unpack(dec)?,
                },
                1 => XEvent::SelectionRequest {
                    selection: Pack::unpack(dec)?,
                    requestor: Pack::unpack(dec)?,
                    property: Pack::unpack(dec)?,
                },
                2 => XEvent::SelectionNotify {
                    selection: Pack::unpack(dec)?,
                    property: Pack::unpack(dec)?,
                },
                3 => XEvent::PropertyNotify {
                    window: Pack::unpack(dec)?,
                    property: Pack::unpack(dec)?,
                },
                4 => XEvent::SelectionClear {
                    selection: Pack::unpack(dec)?,
                },
                _ => return Err(SnapshotError::BadValue("x event")),
            })
        }
    }

    impl Pack for Request {
        fn pack(&self, enc: &mut Enc) {
            match self {
                Request::CreateWindow { rect } => {
                    enc.put_u8(0);
                    rect.pack(enc);
                }
                Request::MapWindow { window } => {
                    enc.put_u8(1);
                    window.pack(enc);
                }
                Request::UnmapWindow { window } => {
                    enc.put_u8(2);
                    window.pack(enc);
                }
                Request::RaiseWindow { window } => {
                    enc.put_u8(3);
                    window.pack(enc);
                }
                Request::DestroyWindow { window } => {
                    enc.put_u8(4);
                    window.pack(enc);
                }
                Request::SetInputFocus { window } => {
                    enc.put_u8(5);
                    window.pack(enc);
                }
                Request::PutImage { window, data } => {
                    enc.put_u8(6);
                    window.pack(enc);
                    data.pack(enc);
                }
                Request::GetImage { window } => {
                    enc.put_u8(7);
                    window.pack(enc);
                }
                Request::XShmGetImage { window } => {
                    enc.put_u8(8);
                    window.pack(enc);
                }
                Request::CopyArea { src, dst } => {
                    enc.put_u8(9);
                    src.pack(enc);
                    dst.pack(enc);
                }
                Request::CopyPlane { src, dst } => {
                    enc.put_u8(10);
                    src.pack(enc);
                    dst.pack(enc);
                }
                Request::SetSelectionOwner { selection, window } => {
                    enc.put_u8(11);
                    selection.pack(enc);
                    window.pack(enc);
                }
                Request::GetSelectionOwner { selection } => {
                    enc.put_u8(12);
                    selection.pack(enc);
                }
                Request::ConvertSelection {
                    selection,
                    requestor,
                    property,
                } => {
                    enc.put_u8(13);
                    selection.pack(enc);
                    requestor.pack(enc);
                    property.pack(enc);
                }
                Request::ChangeProperty {
                    window,
                    property,
                    data,
                } => {
                    enc.put_u8(14);
                    window.pack(enc);
                    property.pack(enc);
                    data.pack(enc);
                }
                Request::GetProperty {
                    window,
                    property,
                    delete,
                } => {
                    enc.put_u8(15);
                    window.pack(enc);
                    property.pack(enc);
                    delete.pack(enc);
                }
                Request::DeleteProperty { window, property } => {
                    enc.put_u8(16);
                    window.pack(enc);
                    property.pack(enc);
                }
                Request::SelectPropertyEvents { window } => {
                    enc.put_u8(17);
                    window.pack(enc);
                }
                Request::SendEvent { target, event } => {
                    enc.put_u8(18);
                    target.pack(enc);
                    event.as_ref().pack(enc);
                }
                Request::XTestFakeInput { payload, target } => {
                    enc.put_u8(19);
                    payload.pack(enc);
                    target.pack(enc);
                }
            }
        }
        fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
            Ok(match dec.take_u8()? {
                0 => Request::CreateWindow {
                    rect: Pack::unpack(dec)?,
                },
                1 => Request::MapWindow {
                    window: Pack::unpack(dec)?,
                },
                2 => Request::UnmapWindow {
                    window: Pack::unpack(dec)?,
                },
                3 => Request::RaiseWindow {
                    window: Pack::unpack(dec)?,
                },
                4 => Request::DestroyWindow {
                    window: Pack::unpack(dec)?,
                },
                5 => Request::SetInputFocus {
                    window: Pack::unpack(dec)?,
                },
                6 => Request::PutImage {
                    window: Pack::unpack(dec)?,
                    data: Pack::unpack(dec)?,
                },
                7 => Request::GetImage {
                    window: Pack::unpack(dec)?,
                },
                8 => Request::XShmGetImage {
                    window: Pack::unpack(dec)?,
                },
                9 => Request::CopyArea {
                    src: Pack::unpack(dec)?,
                    dst: Pack::unpack(dec)?,
                },
                10 => Request::CopyPlane {
                    src: Pack::unpack(dec)?,
                    dst: Pack::unpack(dec)?,
                },
                11 => Request::SetSelectionOwner {
                    selection: Pack::unpack(dec)?,
                    window: Pack::unpack(dec)?,
                },
                12 => Request::GetSelectionOwner {
                    selection: Pack::unpack(dec)?,
                },
                13 => Request::ConvertSelection {
                    selection: Pack::unpack(dec)?,
                    requestor: Pack::unpack(dec)?,
                    property: Pack::unpack(dec)?,
                },
                14 => Request::ChangeProperty {
                    window: Pack::unpack(dec)?,
                    property: Pack::unpack(dec)?,
                    data: Pack::unpack(dec)?,
                },
                15 => Request::GetProperty {
                    window: Pack::unpack(dec)?,
                    property: Pack::unpack(dec)?,
                    delete: Pack::unpack(dec)?,
                },
                16 => Request::DeleteProperty {
                    window: Pack::unpack(dec)?,
                    property: Pack::unpack(dec)?,
                },
                17 => Request::SelectPropertyEvents {
                    window: Pack::unpack(dec)?,
                },
                18 => Request::SendEvent {
                    target: Pack::unpack(dec)?,
                    event: Box::new(Pack::unpack(dec)?),
                },
                19 => Request::XTestFakeInput {
                    payload: Pack::unpack(dec)?,
                    target: Pack::unpack(dec)?,
                },
                _ => return Err(SnapshotError::BadValue("x request")),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_compare_by_name() {
        assert_eq!(Atom::new("CLIPBOARD"), Atom::clipboard());
        assert_ne!(Atom::clipboard(), Atom::primary());
        assert_eq!(Atom::from("X").name(), "X");
    }

    #[test]
    fn display_op_matches_paper_notation() {
        assert_eq!(DisplayOp::Screen.to_string(), "scr");
        assert_eq!(DisplayOp::Copy.to_string(), "copy");
    }

    #[test]
    fn grant_all_link_grants_everything() {
        let mut link = GrantAllLink;
        assert!(link.query(Pid::from_raw(1), DisplayOp::Paste, Timestamp::ZERO));
    }

    #[test]
    fn xerror_display_is_lowercase() {
        assert_eq!(XError::BadAccess.to_string(), "bad access");
    }

    #[test]
    fn client_id_round_trip() {
        assert_eq!(ClientId::from_raw(7).as_raw(), 7);
        assert_eq!(ClientId::from_raw(7).to_string(), "client:7");
    }
}
