//! The trusted output path: overlay alerts (§IV-A, *Trusted output*).
//!
//! Alerts are "rendered on top of all other windows, and cannot be blocked,
//! obscured, or manipulated by other X clients" — in this simulation they
//! live outside the window tree entirely, in a layer only the server can
//! write. Alerts "make use of a visual shared secret set by the user of the
//! system to prevent malicious applications from forging fake alerts"
//! (the cat image in the paper's Figure 5).

use overhaul_sim::{SimDuration, Timestamp};
use serde::{Deserialize, Serialize};

/// One alert shown on the trusted overlay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alert {
    /// Name of the process that accessed (or attempted) the resource.
    pub process: String,
    /// The resource operation, in the paper's notation (`mic`, `cam`,
    /// `scr`, ...).
    pub op: String,
    /// Whether the access was granted (`true`) or blocked (`false`).
    pub granted: bool,
    /// When the alert appeared.
    pub shown_at: Timestamp,
    /// When it disappears.
    pub expires: Timestamp,
    /// The user's visual shared secret, embedded in the rendering.
    pub secret: String,
    /// Whether this alert was replayed after a display-manager restart
    /// (the decision it reports predates the crash). Replayed alerts are
    /// visually marked so the user knows they are late.
    pub replayed: bool,
    /// For denials with an out-of-band cause (channel down, device
    /// quarantine): the cause, rendered verbatim so the overlay, the audit
    /// log, and procfs agree. `None` for plain temporal-proximity outcomes.
    pub reason: Option<String>,
}

impl Alert {
    /// The on-screen text of the alert, secret included.
    pub fn render(&self) -> String {
        let verb = if self.granted {
            "is using"
        } else {
            "was blocked from"
        };
        let cause = match &self.reason {
            Some(reason) => format!(" ({reason})"),
            None => String::new(),
        };
        let suffix = if self.replayed { " (delayed)" } else { "" };
        format!(
            "[{}] {} {} the {}{}{}",
            self.secret, self.process, verb, self.op, cause, suffix
        )
    }

    /// Whether `rendered` could be an authentic alert under `secret`.
    /// A forged alert drawn by a regular client cannot include the secret
    /// (it never leaves the server).
    pub fn looks_authentic(rendered: &str, secret: &str) -> bool {
        rendered.starts_with(&format!("[{secret}]"))
    }
}

/// ```
/// use overhaul_sim::{SimDuration, Timestamp};
/// use overhaul_xserver::overlay::{Alert, AlertManager};
///
/// let mut alerts = AlertManager::new("cat.png", SimDuration::from_secs(3));
/// let alert = alerts.show("skype", "mic", true, Timestamp::from_millis(5));
/// assert!(Alert::looks_authentic(&alert.render(), "cat.png"));
/// assert_eq!(alerts.active(Timestamp::from_millis(100)).len(), 1);
/// ```
/// The overlay alert surface.
#[derive(Debug, Clone)]
pub struct AlertManager {
    secret: String,
    duration: SimDuration,
    history: Vec<Alert>,
}

impl AlertManager {
    /// Creates a manager with the user's visual shared secret and the
    /// display duration ("a few seconds at the top of the screen").
    pub fn new(secret: impl Into<String>, duration: SimDuration) -> Self {
        AlertManager {
            secret: secret.into(),
            duration,
            history: Vec::new(),
        }
    }

    /// The configured shared secret. Server-private: it is never exposed to
    /// clients through any X request, which is what makes alert forgery
    /// detectable. Harness code uses it to check authenticity.
    pub fn secret(&self) -> &str {
        &self.secret
    }

    /// Shows an alert, returning it.
    pub fn show(
        &mut self,
        process: impl Into<String>,
        op: impl Into<String>,
        granted: bool,
        now: Timestamp,
    ) -> &Alert {
        self.show_inner(process.into(), op.into(), granted, now, false, None)
    }

    /// [`AlertManager::show`] carrying the kernel's deny cause, rendered
    /// verbatim on the overlay.
    pub fn show_detailed(
        &mut self,
        process: impl Into<String>,
        op: impl Into<String>,
        granted: bool,
        now: Timestamp,
        reason: Option<&str>,
    ) -> &Alert {
        self.show_inner(
            process.into(),
            op.into(),
            granted,
            now,
            false,
            reason.map(str::to_string),
        )
    }

    /// Shows an alert that was buffered across a display-manager restart,
    /// marked so the user can tell it reports a pre-crash decision.
    pub fn show_replayed(
        &mut self,
        process: impl Into<String>,
        op: impl Into<String>,
        granted: bool,
        now: Timestamp,
    ) -> &Alert {
        self.show_inner(process.into(), op.into(), granted, now, true, None)
    }

    /// [`AlertManager::show_replayed`] carrying the kernel's deny cause.
    pub fn show_replayed_detailed(
        &mut self,
        process: impl Into<String>,
        op: impl Into<String>,
        granted: bool,
        now: Timestamp,
        reason: Option<&str>,
    ) -> &Alert {
        self.show_inner(
            process.into(),
            op.into(),
            granted,
            now,
            true,
            reason.map(str::to_string),
        )
    }

    fn show_inner(
        &mut self,
        process: String,
        op: String,
        granted: bool,
        now: Timestamp,
        replayed: bool,
        reason: Option<String>,
    ) -> &Alert {
        let alert = Alert {
            process,
            op,
            granted,
            shown_at: now,
            expires: now + self.duration,
            secret: self.secret.clone(),
            replayed,
            reason,
        };
        self.history.push(alert);
        self.history.last().expect("just pushed")
    }

    /// Alerts currently on screen at `now`.
    pub fn active(&self, now: Timestamp) -> Vec<&Alert> {
        self.history
            .iter()
            .filter(|a| a.shown_at <= now && now < a.expires)
            .collect()
    }

    /// Every alert ever shown (the experiment harnesses read this).
    pub fn history(&self) -> &[Alert] {
        &self.history
    }

    /// Number of alerts shown so far.
    pub fn shown_count(&self) -> usize {
        self.history.len()
    }
}

mod pack {
    //! Snapshot codec for the overlay alert surface.

    use overhaul_sim::impl_pack;

    use super::{Alert, AlertManager};

    impl_pack!(Alert {
        process,
        op,
        granted,
        shown_at,
        expires,
        secret,
        replayed,
        reason
    });
    impl_pack!(AlertManager {
        secret,
        duration,
        history
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> AlertManager {
        AlertManager::new("cat.png", SimDuration::from_secs(3))
    }

    #[test]
    fn show_and_expire() {
        let mut m = mgr();
        m.show("spy", "cam", false, Timestamp::from_millis(1000));
        assert_eq!(m.active(Timestamp::from_millis(1000)).len(), 1);
        assert_eq!(m.active(Timestamp::from_millis(3999)).len(), 1);
        assert_eq!(m.active(Timestamp::from_millis(4000)).len(), 0);
        assert_eq!(m.history().len(), 1, "expired alerts stay in history");
    }

    #[test]
    fn render_distinguishes_grant_and_block() {
        let mut m = mgr();
        let granted = m.show("skype", "mic", true, Timestamp::ZERO).render();
        assert!(granted.contains("is using"));
        let blocked = m.show("spy", "cam", false, Timestamp::ZERO).render();
        assert!(blocked.contains("was blocked from"));
    }

    #[test]
    fn render_embeds_shared_secret() {
        let mut m = mgr();
        let rendered = m.show("skype", "mic", true, Timestamp::ZERO).render();
        assert!(Alert::looks_authentic(&rendered, "cat.png"));
    }

    #[test]
    fn forged_alert_without_secret_is_not_authentic() {
        let forged = "spoofed-app is using the mic (totally real)";
        assert!(!Alert::looks_authentic(forged, "cat.png"));
        // Even guessing the bracket format fails without the right secret.
        assert!(!Alert::looks_authentic(
            "[dog.png] x is using the mic",
            "cat.png"
        ));
    }

    #[test]
    fn replayed_alert_is_marked_but_still_authentic() {
        let mut m = mgr();
        let rendered = m
            .show_replayed("skype", "mic", true, Timestamp::ZERO)
            .render();
        assert!(rendered.ends_with("(delayed)"));
        assert!(Alert::looks_authentic(&rendered, "cat.png"));
        assert!(m.history()[0].replayed);
    }

    #[test]
    fn detailed_alert_renders_the_deny_cause_before_the_delay_marker() {
        let mut m = mgr();
        let rendered = m
            .show_detailed("spy", "mic", false, Timestamp::ZERO, Some("channel down"))
            .render();
        assert_eq!(
            rendered,
            "[cat.png] spy was blocked from the mic (channel down)"
        );
        let replayed = m
            .show_replayed_detailed(
                "spy",
                "cam",
                false,
                Timestamp::ZERO,
                Some("quarantined pending helper update"),
            )
            .render();
        assert!(replayed.contains("(quarantined pending helper update)"));
        assert!(replayed.ends_with("(delayed)"));
    }

    #[test]
    fn overlapping_alerts_both_active() {
        let mut m = mgr();
        m.show("a", "mic", true, Timestamp::from_millis(0));
        m.show("b", "cam", true, Timestamp::from_millis(1000));
        assert_eq!(m.active(Timestamp::from_millis(1500)).len(), 2);
    }
}
