//! Display-manager checkpoint/restore: the [`XServer`] half of the
//! versioned snapshot format.
//!
//! Everything the server holds is primary state — clients and their event
//! queues, the window tree (including stacking order and `visible_since`
//! clocks, which the clickjacking gate depends on), selection ownership
//! and in-flight transfers, the overlay alert and prompt surfaces, input
//! focus, and the hash-chained ledger (the audit log is rebuilt from it as
//! a projection on decode). The shared virtual clock and tracer are owned
//! by the system harness, which serializes each once and hands the
//! imported handles back in.

use overhaul_sim::snapshot::{Dec, Enc, Pack, SnapshotError};
use overhaul_sim::{impl_pack, Clock, Tracer};

use crate::{XConfig, XServer};

impl_pack!(XConfig {
    overhaul_enabled,
    visibility_threshold,
    alert_duration,
    shared_secret,
    screen
});

impl XServer {
    /// Serializes the server's state into `enc`.
    ///
    /// The shared clock/tracer handles are serialized by the system
    /// harness, not here.
    pub fn export_snapshot(&self, enc: &mut Enc) {
        self.config.pack(enc);
        self.clients.pack(enc);
        self.windows.pack(enc);
        self.selections.pack(enc);
        self.alerts.pack(enc);
        self.prompts.pack(enc);
        self.focus.pack(enc);
        self.ledger.pack(enc);
    }

    /// Rebuilds a server from state serialized by
    /// [`XServer::export_snapshot`], wiring in the shared `clock` and
    /// `tracer` handles the system harness imported.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from a truncated or corrupt state section.
    pub fn import_snapshot(
        dec: &mut Dec<'_>,
        clock: Clock,
        tracer: Tracer,
    ) -> Result<XServer, SnapshotError> {
        Ok(XServer {
            config: Pack::unpack(dec)?,
            clients: Pack::unpack(dec)?,
            windows: Pack::unpack(dec)?,
            selections: Pack::unpack(dec)?,
            alerts: Pack::unpack(dec)?,
            prompts: Pack::unpack(dec)?,
            focus: Pack::unpack(dec)?,
            ledger: Pack::unpack(dec)?,
            clock,
            tracer,
        })
    }
}
