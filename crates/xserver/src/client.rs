//! Connected X clients and their event queues.
//!
//! Each client connection is bound to a kernel process id: "The PID serves
//! as an unforgeable binding between a window belonging to a process and
//! events, as the mapping between X client sockets and the PID is retrieved
//! from the kernel" (§IV-A). In this simulation the core crate performs
//! that retrieval when it connects an application process to the X server.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use overhaul_sim::Pid;

use crate::protocol::{ClientId, XError, XEvent};
use crate::window::WindowId;

/// One connected client.
#[derive(Debug, Clone)]
pub struct Client {
    id: ClientId,
    pid: Pid,
    events: VecDeque<XEvent>,
    property_watches: BTreeSet<WindowId>,
}

impl Client {
    /// Client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The kernel process behind this connection.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Events waiting for delivery.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Whether the client subscribed to property events on `window`.
    pub fn watches_properties_of(&self, window: WindowId) -> bool {
        self.property_watches.contains(&window)
    }
}

/// Registry of connected clients.
#[derive(Debug, Clone, Default)]
pub struct ClientRegistry {
    clients: BTreeMap<ClientId, Client>,
    next: u32,
}

impl ClientRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ClientRegistry::default()
    }

    /// Accepts a connection from the process `pid` (the pid is resolved
    /// from the client socket by the kernel, not claimed by the client).
    pub fn connect(&mut self, pid: Pid) -> ClientId {
        self.next += 1;
        let id = ClientId::from_raw(self.next);
        self.clients.insert(
            id,
            Client {
                id,
                pid,
                events: VecDeque::new(),
                property_watches: BTreeSet::new(),
            },
        );
        id
    }

    /// Disconnects a client.
    pub fn disconnect(&mut self, id: ClientId) -> Result<(), XError> {
        self.clients
            .remove(&id)
            .map(|_| ())
            .ok_or(XError::BadClient)
    }

    /// Looks up a client.
    pub fn get(&self, id: ClientId) -> Result<&Client, XError> {
        self.clients.get(&id).ok_or(XError::BadClient)
    }

    /// The pid bound to a client.
    pub fn pid_of(&self, id: ClientId) -> Result<Pid, XError> {
        Ok(self.get(id)?.pid())
    }

    /// The (first) client bound to `pid`, if connected.
    pub fn client_of_pid(&self, pid: Pid) -> Option<ClientId> {
        self.clients.values().find(|c| c.pid == pid).map(|c| c.id)
    }

    /// Queues an event for delivery to a client.
    pub fn deliver(&mut self, id: ClientId, event: XEvent) -> Result<(), XError> {
        self.clients
            .get_mut(&id)
            .ok_or(XError::BadClient)?
            .events
            .push_back(event);
        Ok(())
    }

    /// Pops the next pending event for a client.
    pub fn next_event(&mut self, id: ClientId) -> Result<Option<XEvent>, XError> {
        Ok(self
            .clients
            .get_mut(&id)
            .ok_or(XError::BadClient)?
            .events
            .pop_front())
    }

    /// Drains all pending events for a client.
    pub fn drain_events(&mut self, id: ClientId) -> Result<Vec<XEvent>, XError> {
        let client = self.clients.get_mut(&id).ok_or(XError::BadClient)?;
        Ok(client.events.drain(..).collect())
    }

    /// Subscribes `id` to property events on `window`.
    pub fn watch_properties(&mut self, id: ClientId, window: WindowId) -> Result<(), XError> {
        self.clients
            .get_mut(&id)
            .ok_or(XError::BadClient)?
            .property_watches
            .insert(window);
        Ok(())
    }

    /// All clients watching properties of `window`.
    pub fn property_watchers(&self, window: WindowId) -> Vec<ClientId> {
        self.clients
            .values()
            .filter(|c| c.property_watches.contains(&window))
            .map(|c| c.id)
            .collect()
    }

    /// All connected client ids.
    pub fn ids(&self) -> Vec<ClientId> {
        self.clients.keys().copied().collect()
    }

    /// Number of connected clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether no clients are connected.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }
}

mod pack {
    //! Snapshot codec for the client registry.

    use overhaul_sim::impl_pack;

    use super::{Client, ClientRegistry};

    impl_pack!(Client {
        id,
        pid,
        events,
        property_watches
    });
    impl_pack!(ClientRegistry { clients, next });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Atom, InputPayload};

    #[test]
    fn connect_binds_pid() {
        let mut reg = ClientRegistry::new();
        let c = reg.connect(Pid::from_raw(44));
        assert_eq!(reg.pid_of(c).unwrap(), Pid::from_raw(44));
        assert_eq!(reg.client_of_pid(Pid::from_raw(44)), Some(c));
        assert_eq!(reg.client_of_pid(Pid::from_raw(45)), None);
    }

    #[test]
    fn events_queue_in_order() {
        let mut reg = ClientRegistry::new();
        let c = reg.connect(Pid::from_raw(1));
        let w = WindowId::from_raw(1);
        reg.deliver(
            c,
            XEvent::Input {
                window: w,
                payload: InputPayload::Key { ch: 'a' },
                synthetic: false,
            },
        )
        .unwrap();
        reg.deliver(
            c,
            XEvent::SelectionClear {
                selection: Atom::clipboard(),
            },
        )
        .unwrap();
        assert_eq!(reg.get(c).unwrap().pending_events(), 2);
        assert!(matches!(
            reg.next_event(c).unwrap(),
            Some(XEvent::Input { .. })
        ));
        assert!(matches!(
            reg.next_event(c).unwrap(),
            Some(XEvent::SelectionClear { .. })
        ));
        assert_eq!(reg.next_event(c).unwrap(), None);
    }

    #[test]
    fn drain_empties_queue() {
        let mut reg = ClientRegistry::new();
        let c = reg.connect(Pid::from_raw(1));
        reg.deliver(
            c,
            XEvent::SelectionClear {
                selection: Atom::primary(),
            },
        )
        .unwrap();
        assert_eq!(reg.drain_events(c).unwrap().len(), 1);
        assert_eq!(reg.get(c).unwrap().pending_events(), 0);
    }

    #[test]
    fn disconnect_removes_client() {
        let mut reg = ClientRegistry::new();
        let c = reg.connect(Pid::from_raw(1));
        reg.disconnect(c).unwrap();
        assert_eq!(reg.get(c).err(), Some(XError::BadClient));
        assert_eq!(reg.disconnect(c), Err(XError::BadClient));
    }

    #[test]
    fn property_watch_bookkeeping() {
        let mut reg = ClientRegistry::new();
        let a = reg.connect(Pid::from_raw(1));
        let b = reg.connect(Pid::from_raw(2));
        let w = WindowId::from_raw(9);
        reg.watch_properties(a, w).unwrap();
        assert!(reg.get(a).unwrap().watches_properties_of(w));
        assert!(!reg.get(b).unwrap().watches_properties_of(w));
        assert_eq!(reg.property_watchers(w), vec![a]);
    }

    #[test]
    fn two_connections_same_pid_are_distinct_clients() {
        let mut reg = ClientRegistry::new();
        let a = reg.connect(Pid::from_raw(7));
        let b = reg.connect(Pid::from_raw(7));
        assert_ne!(a, b);
        assert_eq!(reg.len(), 2);
    }
}
