//! Screen geometry: points, rectangles, and occlusion arithmetic.
//!
//! The clickjacking defense (§IV-A, *Trusted input*) needs to know whether
//! a window "has stayed visible above a predefined time threshold", which
//! in turn needs an occlusion test: how much of a window is covered by
//! windows stacked above it.

use serde::{Deserialize, Serialize};

/// A point in screen coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: i32,
    /// Vertical coordinate.
    pub y: i32,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }
}

/// An axis-aligned rectangle (origin + size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x: i32,
    /// Top edge.
    pub y: i32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Rect {
    /// Creates a rectangle.
    pub const fn new(x: i32, y: i32, width: u32, height: u32) -> Self {
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// Right edge (exclusive).
    pub fn right(&self) -> i32 {
        self.x + self.width as i32
    }

    /// Bottom edge (exclusive).
    pub fn bottom(&self) -> i32 {
        self.y + self.height as i32
    }

    /// Area in pixels.
    pub fn area(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Whether `p` lies inside the rectangle.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x && p.x < self.right() && p.y >= self.y && p.y < self.bottom()
    }

    /// The intersection of two rectangles, or `None` if disjoint or either
    /// is empty.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let right = self.right().min(other.right());
        let bottom = self.bottom().min(other.bottom());
        if x < right && y < bottom {
            Some(Rect::new(x, y, (right - x) as u32, (bottom - y) as u32))
        } else {
            None
        }
    }

    /// Fraction of `self`'s area covered by the union of `covers`,
    /// in `[0, 1]`. Exact: uses coordinate-compression over the cover set.
    pub fn coverage_by(&self, covers: &[Rect]) -> f64 {
        if self.area() == 0 {
            return 0.0;
        }
        let clipped: Vec<Rect> = covers.iter().filter_map(|c| self.intersect(c)).collect();
        if clipped.is_empty() {
            return 0.0;
        }
        // Coordinate compression: split the plane into a grid induced by
        // all rectangle edges and count covered cells.
        let mut xs: Vec<i32> = clipped.iter().flat_map(|r| [r.x, r.right()]).collect();
        let mut ys: Vec<i32> = clipped.iter().flat_map(|r| [r.y, r.bottom()]).collect();
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        let mut covered: u64 = 0;
        for xi in 0..xs.len() - 1 {
            for yi in 0..ys.len() - 1 {
                let cell = Rect::new(
                    xs[xi],
                    ys[yi],
                    (xs[xi + 1] - xs[xi]) as u32,
                    (ys[yi + 1] - ys[yi]) as u32,
                );
                if clipped.iter().any(|c| {
                    c.x <= cell.x
                        && c.y <= cell.y
                        && c.right() >= cell.right()
                        && c.bottom() >= cell.bottom()
                }) {
                    covered += cell.area();
                }
            }
        }
        covered as f64 / self.area() as f64
    }
}

mod pack {
    //! Snapshot codec for screen geometry.

    use overhaul_sim::impl_pack;

    use super::{Point, Rect};

    impl_pack!(Point { x, y });
    impl_pack!(Rect {
        x,
        y,
        width,
        height
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_respects_exclusive_edges() {
        let r = Rect::new(0, 0, 10, 10);
        assert!(r.contains(Point::new(0, 0)));
        assert!(r.contains(Point::new(9, 9)));
        assert!(!r.contains(Point::new(10, 9)));
        assert!(!r.contains(Point::new(-1, 5)));
    }

    #[test]
    fn intersect_overlapping() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersect(&b), Some(Rect::new(5, 5, 5, 5)));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(20, 20, 5, 5);
        assert_eq!(a.intersect(&b), None);
        // Touching edges do not intersect.
        let c = Rect::new(10, 0, 5, 10);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn coverage_empty_and_full() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(r.coverage_by(&[]), 0.0);
        assert_eq!(r.coverage_by(&[Rect::new(-5, -5, 30, 30)]), 1.0);
    }

    #[test]
    fn coverage_half() {
        let r = Rect::new(0, 0, 10, 10);
        let half = Rect::new(0, 0, 5, 10);
        assert!((r.coverage_by(&[half]) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn coverage_does_not_double_count_overlapping_covers() {
        let r = Rect::new(0, 0, 10, 10);
        // Two identical half-covers: union is still one half.
        let half = Rect::new(0, 0, 5, 10);
        assert!((r.coverage_by(&[half, half]) - 0.5).abs() < 1e-9);
        // Two quarter-covers overlapping in one eighth.
        let a = Rect::new(0, 0, 5, 5);
        let b = Rect::new(2, 0, 5, 5);
        let expected = (25.0 + 25.0 - 15.0) / 100.0;
        assert!((r.coverage_by(&[a, b]) - expected).abs() < 1e-9);
    }

    #[test]
    fn coverage_of_zero_area_rect_is_zero() {
        let r = Rect::new(0, 0, 0, 10);
        assert_eq!(r.coverage_by(&[Rect::new(0, 0, 100, 100)]), 0.0);
    }
}
