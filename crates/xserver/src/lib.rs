//! X Window System simulator with Overhaul's display-manager enhancements.
//!
//! This crate reproduces the X.Org-side half of *Overhaul* (DSN 2016):
//!
//! * **Trusted input path** (§IV-A): hardware input events are delivered
//!   through [`XServer::hardware_click`] / [`XServer::hardware_key`] and
//!   generate interaction notifications to the kernel permission monitor;
//!   synthetic injections (`SendEvent`, `XTestFakeInput`) are delivered but
//!   *never* generate notifications. A clickjacking gate requires the
//!   receiving client to own a window that has stayed visible beyond a
//!   threshold.
//! * **Trusted output path**: unobscurable overlay alerts with a visual
//!   shared secret ([`overlay`]).
//! * **Display-contents mediation**: `GetImage`, `XShmGetImage`,
//!   `CopyArea`, `CopyPlane` are cleared with the kernel monitor unless a
//!   client reads its own window.
//! * **Clipboard mediation** (Figure 6): `SetSelectionOwner` (copy) and
//!   `ConvertSelection` (paste) are cleared with the monitor; protocol
//!   bypasses — forged `SelectionRequest`/`SelectionNotify` via
//!   `SendEvent`, property snooping on in-flight transfers — are blocked.
//!
//! The kernel is reached through the [`protocol::MonitorLink`] trait (the
//! netlink channel in the prototype); tests may plug in mocks.
//!
//! # Example
//!
//! ```
//! use overhaul_sim::{Clock, Pid};
//! use overhaul_xserver::geometry::Rect;
//! use overhaul_xserver::protocol::{GrantAllLink, Request};
//! use overhaul_xserver::{XConfig, XServer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let clock = Clock::new();
//! let mut x = XServer::new(clock.clone(), XConfig::default());
//! let client = x.connect_client(Pid::from_raw(10));
//! let window = match x.request(client, Request::CreateWindow { rect: Rect::new(0, 0, 100, 100) },
//!                              &mut GrantAllLink)? {
//!     overhaul_xserver::protocol::Reply::Window(w) => w,
//!     _ => unreachable!(),
//! };
//! x.request(client, Request::MapWindow { window }, &mut GrantAllLink)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod geometry;
pub mod overlay;
pub mod prompt;
pub mod protocol;
pub mod selection;
pub mod snapshot;
pub mod window;

use std::borrow::Cow;

use overhaul_sim::{
    AuditCategory, AuditLog, Clock, Ledger, LedgerEntry, Pid, SimDuration, Timestamp, TraceValue,
    Tracer,
};

use crate::client::ClientRegistry;
use crate::geometry::{Point, Rect};
use crate::overlay::{Alert, AlertManager};
use crate::prompt::{Prompt, PromptId, PromptSurface};
use crate::protocol::{
    Atom, ClientId, DisplayOp, InputPayload, MonitorLink, Reply, Request, XError, XEvent,
};
use crate::selection::{SelectionTable, Transfer};
use crate::window::{WindowId, WindowTree};

/// Display-manager configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct XConfig {
    /// Master switch for the Overhaul enhancements; `false` reproduces a
    /// stock X server (the Table I baseline and the unprotected machine of
    /// §V-D).
    pub overhaul_enabled: bool,
    /// How long a client's window must have been continuously visible
    /// before its input events generate interaction notifications (the
    /// clickjacking gate; "a predefined time threshold", §IV-A).
    pub visibility_threshold: SimDuration,
    /// How long overlay alerts stay on screen ("a few seconds").
    pub alert_duration: SimDuration,
    /// The user's visual shared secret (the cat image of Figure 5).
    pub shared_secret: String,
    /// Root-window geometry.
    pub screen: Rect,
}

impl Default for XConfig {
    fn default() -> Self {
        XConfig {
            overhaul_enabled: true,
            visibility_threshold: SimDuration::from_millis(500),
            alert_duration: SimDuration::from_secs(3),
            shared_secret: "cat.png".to_string(),
            screen: Rect::new(0, 0, 1920, 1080),
        }
    }
}

impl XConfig {
    /// A stock (non-Overhaul) X server configuration.
    pub fn baseline() -> Self {
        XConfig {
            overhaul_enabled: false,
            ..XConfig::default()
        }
    }
}

/// The simulated X server.
#[derive(Debug)]
pub struct XServer {
    clock: Clock,
    config: XConfig,
    clients: ClientRegistry,
    windows: WindowTree,
    selections: SelectionTable,
    alerts: AlertManager,
    prompts: PromptSurface,
    focus: Option<WindowId>,
    /// Hash-chained authoritative history; the legacy audit log is a
    /// rendered projection of its non-silent entries.
    ledger: Ledger,
    /// Virtual-time span tracer. Disabled (no-op) unless the system harness
    /// installs a shared enabled handle, in which case the display manager
    /// records into the same trace as the kernel.
    tracer: Tracer,
}

impl XServer {
    /// Per-request client<->server round-trip cost (see [`XServer::request`]).
    pub const REQUEST_RTT_MICROS: u64 = 230;

    /// Per-pixel capture/transfer cost for `GetImage`-family requests.
    /// Table I's screen-capture row (68.26 s baseline / 1 000 full-screen
    /// captures at 1920x1080) works out to ~33 ns per pixel.
    pub const CAPTURE_COST_PER_PIXEL_NANOS: u64 = 33;

    /// Overlay alert rendering cost. Table I's screen-capture row shows
    /// +1.6 ms per capture under Overhaul, dominated by compositing the
    /// alert banner.
    pub const ALERT_RENDER_MICROS: u64 = 1_500;

    /// Starts a server on the shared virtual clock.
    pub fn new(clock: Clock, config: XConfig) -> Self {
        let alerts = AlertManager::new(config.shared_secret.clone(), config.alert_duration);
        let prompts = PromptSurface::new(config.shared_secret.clone());
        XServer {
            clock,
            config,
            clients: ClientRegistry::new(),
            windows: WindowTree::new(),
            selections: SelectionTable::new(),
            alerts,
            prompts,
            focus: None,
            ledger: Ledger::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a (shared) tracer handle; input authentication and
    /// clickjacking checks record spans into it.
    pub fn install_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The server's tracer handle (disabled unless one was installed).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current configuration.
    pub fn config(&self) -> &XConfig {
        &self.config
    }

    /// Flips the Overhaul enhancements on or off.
    pub fn set_overhaul_enabled(&mut self, enabled: bool) {
        self.config.overhaul_enabled = enabled;
    }

    /// Reconfigures the clickjacking visibility threshold (ablations).
    pub fn set_visibility_threshold(&mut self, threshold: SimDuration) {
        self.config.visibility_threshold = threshold;
    }

    /// The display manager's audit log — a rendered projection of the
    /// hash-chained ledger.
    pub fn audit(&self) -> &AuditLog {
        self.ledger.audit()
    }

    /// The display manager's hash-chained ledger (the authoritative
    /// history the audit log is projected from).
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Clears recorded history while preserving chain continuity
    /// (measurement harnesses clear periodically so log growth does not
    /// distort long benchmark loops).
    pub fn clear_history(&mut self) {
        self.ledger.clear();
    }

    /// Appends an informational event to the ledger (and thereby the
    /// projected audit log).
    fn record(
        &mut self,
        at: Timestamp,
        category: AuditCategory,
        pid: Option<Pid>,
        detail: impl Into<Cow<'static, str>>,
    ) {
        self.ledger
            .append(LedgerEntry::event(at, category, pid, detail));
    }

    /// The overlay alert surface.
    pub fn alerts(&self) -> &AlertManager {
        &self.alerts
    }

    /// The overlay prompt surface (the §IV-A prompt-based policy variant).
    pub fn prompts(&self) -> &PromptSurface {
        &self.prompts
    }

    /// Displays an unforgeable permission prompt on the trusted output
    /// path. Returns `None` while another prompt is pending.
    pub fn ask_prompt(&mut self, process: &str, op: &str) -> Option<PromptId> {
        overhaul_sim::work::spin_micros(Self::ALERT_RENDER_MICROS);
        let now = self.clock.now();
        let id = self.prompts.ask(process, op, now)?;
        self.record(
            now,
            AuditCategory::AlertDisplayed,
            None,
            format!("prompt {id}: {process} requests {op}"),
        );
        Some(id)
    }

    /// Resolves the pending prompt with the user's *hardware* answer. This
    /// entry point is only reachable from the input-driver path — never
    /// from `SendEvent`/XTest — which is what makes the prompt's answer
    /// trustworthy.
    pub fn hardware_prompt_answer(&mut self, approve: bool) -> Option<Prompt> {
        let prompt = self.prompts.answer(approve)?;
        self.record(
            self.clock.now(),
            AuditCategory::InteractionNotification,
            None,
            format!(
                "prompt {} answered {}",
                prompt.id,
                if approve { "allow" } else { "deny" }
            ),
        );
        Some(prompt)
    }

    /// The window tree (read-only).
    pub fn windows(&self) -> &WindowTree {
        &self.windows
    }

    /// Current virtual time.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    // ---------------------------------------------------------------
    // Connection management
    // ---------------------------------------------------------------

    /// Accepts a client connection from process `pid` (the pid comes from
    /// kernel socket introspection, not from the client).
    pub fn connect_client(&mut self, pid: Pid) -> ClientId {
        self.clients.connect(pid)
    }

    /// Disconnects a client, destroying its windows and releasing its
    /// selections.
    ///
    /// # Errors
    ///
    /// [`XError::BadClient`] for unknown clients.
    pub fn disconnect_client(&mut self, client: ClientId) -> Result<(), XError> {
        self.clients.disconnect(client)?;
        self.windows.destroy_all_for(client, self.clock.now());
        self.selections.purge_client(client);
        if let Some(focus) = self.focus {
            if self.windows.get(focus).is_err() {
                self.focus = None;
            }
        }
        Ok(())
    }

    /// The process behind a client connection.
    ///
    /// # Errors
    ///
    /// [`XError::BadClient`] for unknown clients.
    pub fn pid_of(&self, client: ClientId) -> Result<Pid, XError> {
        self.clients.pid_of(client)
    }

    /// The (first) client connection of a process.
    pub fn client_of_pid(&self, pid: Pid) -> Option<ClientId> {
        self.clients.client_of_pid(pid)
    }

    /// Pops the next event queued for `client`.
    ///
    /// # Errors
    ///
    /// [`XError::BadClient`] for unknown clients.
    pub fn next_event(&mut self, client: ClientId) -> Result<Option<XEvent>, XError> {
        self.clients.next_event(client)
    }

    /// Drains all events queued for `client`.
    ///
    /// # Errors
    ///
    /// [`XError::BadClient`] for unknown clients.
    pub fn drain_events(&mut self, client: ClientId) -> Result<Vec<XEvent>, XError> {
        self.clients.drain_events(client)
    }

    // ---------------------------------------------------------------
    // Trusted input path
    // ---------------------------------------------------------------

    /// A hardware pointer click at `p`, as reported by an input driver.
    ///
    /// The event is delivered to the topmost mapped window under the
    /// pointer; if the receiving client passes the clickjacking gate, an
    /// interaction notification is sent to the kernel monitor. Returns the
    /// window hit, if any.
    pub fn hardware_click(&mut self, p: Point, link: &mut dyn MonitorLink) -> Option<WindowId> {
        let window = self.windows.topmost_at(p)?;
        let rect = self.windows.get(window).ok()?.rect();
        let payload = InputPayload::Button {
            x: p.x - rect.x,
            y: p.y - rect.y,
        };
        self.deliver_hardware_input(window, payload, link);
        Some(window)
    }

    /// A hardware key press, delivered to the focus window.
    ///
    /// Returns the window that received the key, if any has focus.
    pub fn hardware_key(&mut self, ch: char, link: &mut dyn MonitorLink) -> Option<WindowId> {
        let window = self.focus.filter(|w| {
            self.windows
                .get(*w)
                .map(|win| win.mapped())
                .unwrap_or(false)
        })?;
        self.deliver_hardware_input(window, InputPayload::Key { ch }, link);
        Some(window)
    }

    fn deliver_hardware_input(
        &mut self,
        window: WindowId,
        payload: InputPayload,
        link: &mut dyn MonitorLink,
    ) {
        let now = self.clock.now();
        let Ok(owner) = self.windows.get(window).map(|w| w.owner()) else {
            return;
        };
        let _ = self.clients.deliver(
            owner,
            XEvent::Input {
                window,
                payload,
                synthetic: false,
            },
        );
        let Ok(pid) = self.clients.pid_of(owner) else {
            return;
        };
        if self.config.overhaul_enabled {
            // Clickjacking gate: the client must own a window that has been
            // continuously visible for at least the threshold. Before
            // `threshold` has elapsed since boot no window can qualify.
            let stable_cutoff = now
                .as_millis()
                .checked_sub(self.config.visibility_threshold.as_millis())
                .map(Timestamp::from_millis);
            let stable = stable_cutoff
                .map(|cutoff| self.windows.client_has_stable_window(owner, cutoff))
                .unwrap_or(false);
            self.tracer.record_span(
                "x.input",
                now,
                now,
                &[
                    ("pid", TraceValue::U64(u64::from(pid.as_raw()))),
                    ("window", TraceValue::U64(window.as_raw())),
                    (
                        "auth",
                        TraceValue::Static(if stable {
                            "notified"
                        } else {
                            "clickjack-suppressed"
                        }),
                    ),
                ],
            );
            if stable {
                link.notify_interaction(pid, now);
                self.record(
                    now,
                    AuditCategory::InteractionNotification,
                    Some(pid),
                    format!("hardware input on {window}"),
                );
            } else {
                self.record(
                    now,
                    AuditCategory::ClickjackingSuppressed,
                    Some(pid),
                    format!("window {window} not stably visible"),
                );
            }
        }
        // A stock X server (baseline) has no trusted input path and sends
        // no notifications at all.
    }

    /// Renders an overlay alert (used by the core when the kernel pushes a
    /// `V_{A,op}` request, and internally for screen-capture decisions).
    pub fn show_alert(&mut self, process: &str, op: &str, granted: bool) -> Alert {
        self.show_alert_detailed(process, op, granted, None)
    }

    /// [`XServer::show_alert`] carrying the kernel's deny cause (channel
    /// down, device quarantine), rendered verbatim on the overlay so it
    /// matches the kernel audit log.
    pub fn show_alert_detailed(
        &mut self,
        process: &str,
        op: &str,
        granted: bool,
        reason: Option<&str>,
    ) -> Alert {
        overhaul_sim::work::spin_micros(Self::ALERT_RENDER_MICROS);
        let now = self.clock.now();
        let alert = self
            .alerts
            .show_detailed(process, op, granted, now, reason)
            .clone();
        self.record(
            now,
            AuditCategory::AlertDisplayed,
            None,
            format!(
                "{process}: {op} {}",
                if granted { "granted" } else { "blocked" }
            ),
        );
        alert
    }

    /// Renders an overlay alert for a kernel push that was buffered across
    /// a display-manager restart. The alert carries the shared secret like
    /// any other, but is visibly marked as delayed so the user knows the
    /// decision predates the crash.
    pub fn show_alert_replayed(&mut self, process: &str, op: &str, granted: bool) -> Alert {
        self.show_alert_replayed_detailed(process, op, granted, None)
    }

    /// [`XServer::show_alert_replayed`] carrying the kernel's deny cause.
    pub fn show_alert_replayed_detailed(
        &mut self,
        process: &str,
        op: &str,
        granted: bool,
        reason: Option<&str>,
    ) -> Alert {
        overhaul_sim::work::spin_micros(Self::ALERT_RENDER_MICROS);
        let now = self.clock.now();
        let alert = self
            .alerts
            .show_replayed_detailed(process, op, granted, now, reason)
            .clone();
        self.record(
            now,
            AuditCategory::AlertDisplayed,
            None,
            format!(
                "{process}: {op} {} (replayed)",
                if granted { "granted" } else { "blocked" }
            ),
        );
        alert
    }

    // ---------------------------------------------------------------
    // Request dispatch
    // ---------------------------------------------------------------

    /// Handles one client request, consulting the kernel monitor through
    /// `link` where Overhaul requires it.
    ///
    /// # Errors
    ///
    /// [`XError::BadAccess`] for Overhaul denials and blocked protocol
    /// attacks; standard X errors otherwise.
    pub fn request(
        &mut self,
        client: ClientId,
        request: Request,
        link: &mut dyn MonitorLink,
    ) -> Result<Reply, XError> {
        // Each request costs one client<->server socket round trip plus the
        // server's dispatch critical section. Table I's clipboard row
        // (116.48 s baseline / 100 k pastes, ~5 requests per paste) puts
        // this near 230 us on the paper's testbed.
        overhaul_sim::work::spin_micros(Self::REQUEST_RTT_MICROS);
        // Validate the connection first; everything below may assume it.
        let pid = self.clients.pid_of(client)?;
        let now = self.clock.now();
        match request {
            Request::CreateWindow { rect } => {
                let id = self.windows.create(client, rect);
                Ok(Reply::Window(id))
            }
            Request::MapWindow { window } => {
                self.owned_window(client, window)?;
                self.windows.map(window, now)?;
                Ok(Reply::Ok)
            }
            Request::UnmapWindow { window } => {
                self.owned_window(client, window)?;
                self.windows.unmap(window, now)?;
                Ok(Reply::Ok)
            }
            Request::RaiseWindow { window } => {
                self.owned_window(client, window)?;
                self.windows.raise(window, now)?;
                Ok(Reply::Ok)
            }
            Request::DestroyWindow { window } => {
                self.owned_window(client, window)?;
                self.windows.destroy(window, now)?;
                if self.focus == Some(window) {
                    self.focus = None;
                }
                Ok(Reply::Ok)
            }
            Request::SetInputFocus { window } => {
                // Any client may move focus (simplification: no WM).
                self.windows.get(window)?;
                self.focus = Some(window);
                Ok(Reply::Ok)
            }
            Request::PutImage { window, data } => {
                self.owned_window(client, window)?;
                self.windows.put_image(window, data)?;
                Ok(Reply::Ok)
            }
            Request::GetImage { window } | Request::XShmGetImage { window } => {
                self.capture_image(client, pid, window, link)
            }
            Request::CopyArea { src, dst } | Request::CopyPlane { src, dst } => {
                self.copy_area(client, pid, src, dst, link)
            }
            Request::SetSelectionOwner { selection, window } => {
                self.set_selection_owner(client, pid, selection, window, link)
            }
            Request::GetSelectionOwner { selection } => {
                Ok(Reply::SelectionOwner(self.selections.owner(&selection)))
            }
            Request::ConvertSelection {
                selection,
                requestor,
                property,
            } => self.convert_selection(client, pid, selection, requestor, property, link),
            Request::ChangeProperty {
                window,
                property,
                data,
            } => self.change_property(client, window, property, data),
            Request::GetProperty {
                window,
                property,
                delete,
            } => self.get_property(client, window, property, delete),
            Request::DeleteProperty { window, property } => {
                self.owned_window(client, window)?;
                self.windows.delete_property(window, &property)?;
                Ok(Reply::Ok)
            }
            Request::SelectPropertyEvents { window } => {
                self.windows.get(window)?;
                self.clients.watch_properties(client, window)?;
                Ok(Reply::Ok)
            }
            Request::SendEvent { target, event } => self.send_event(client, pid, target, *event),
            Request::XTestFakeInput { payload, target } => {
                // XTest events carry no wire flag; the server tags their
                // provenance by generating extension (§IV-A) and treats
                // them as synthetic: delivered, never trusted.
                let owner = self.windows.get(target)?.owner();
                self.clients.deliver(
                    owner,
                    XEvent::Input {
                        window: target,
                        payload,
                        synthetic: true,
                    },
                )?;
                if self.config.overhaul_enabled {
                    self.record(
                        now,
                        AuditCategory::SyntheticInputFiltered,
                        Some(pid),
                        format!("XTestFakeInput toward {target}"),
                    );
                }
                Ok(Reply::Ok)
            }
        }
    }

    fn owned_window(&self, client: ClientId, window: WindowId) -> Result<(), XError> {
        if self.windows.get(window)?.owner() == client {
            Ok(())
        } else {
            Err(XError::BadMatch)
        }
    }

    // ---------------------------------------------------------------
    // Display contents
    // ---------------------------------------------------------------

    fn capture_image(
        &mut self,
        client: ClientId,
        pid: Pid,
        window: Option<WindowId>,
        link: &mut dyn MonitorLink,
    ) -> Result<Reply, XError> {
        let now = self.clock.now();
        let own_window = match window {
            Some(w) => self.windows.get(w)?.owner() == client,
            None => false,
        };
        if !own_window && self.config.overhaul_enabled {
            let granted = link.query(pid, DisplayOp::Screen, now);
            let process = format!("pid {}", pid.as_raw());
            let target = window
                .map(|w| w.to_string())
                .unwrap_or_else(|| "root".into());
            if granted {
                self.record(
                    now,
                    AuditCategory::PermissionGranted,
                    Some(pid),
                    format!("GetImage on {target}"),
                );
                self.show_alert(&process, "scr", true);
            } else {
                self.record(
                    now,
                    AuditCategory::PermissionDenied,
                    Some(pid),
                    format!("GetImage on {target}"),
                );
                self.show_alert(&process, "scr", false);
                return Err(XError::BadAccess);
            }
        }
        let pixels = match window {
            Some(w) => self.windows.get(w)?.pixels().to_vec(),
            None => self.composite_root(),
        };
        // Framebuffer read-back + transfer to the client.
        overhaul_sim::work::spin_nanos(pixels.len() as u64 * Self::CAPTURE_COST_PER_PIXEL_NANOS);
        Ok(Reply::Image(pixels))
    }

    fn copy_area(
        &mut self,
        client: ClientId,
        pid: Pid,
        src: Option<WindowId>,
        dst: WindowId,
        link: &mut dyn MonitorLink,
    ) -> Result<Reply, XError> {
        // Destination must be the requestor's own drawable.
        self.owned_window(client, dst)?;
        let now = self.clock.now();
        let src_is_own = match src {
            Some(w) => self.windows.get(w)?.owner() == client,
            None => false,
        };
        // "If the owners of both buffers are identical ... the request is
        // allowed to proceed" — otherwise input-driven access control.
        if !src_is_own && self.config.overhaul_enabled {
            let granted = link.query(pid, DisplayOp::Screen, now);
            let target = src.map(|w| w.to_string()).unwrap_or_else(|| "root".into());
            if granted {
                self.record(
                    now,
                    AuditCategory::PermissionGranted,
                    Some(pid),
                    format!("CopyArea from {target}"),
                );
                self.show_alert(&format!("pid {}", pid.as_raw()), "scr", true);
            } else {
                self.record(
                    now,
                    AuditCategory::PermissionDenied,
                    Some(pid),
                    format!("CopyArea from {target}"),
                );
                self.show_alert(&format!("pid {}", pid.as_raw()), "scr", false);
                return Err(XError::BadAccess);
            }
        }
        let data = match src {
            Some(w) => self.windows.get(w)?.pixels().to_vec(),
            None => self.composite_root(),
        };
        let mut merged = self.windows.get(dst)?.pixels().to_vec();
        let n = merged.len().min(data.len());
        merged[..n].copy_from_slice(&data[..n]);
        self.windows.put_image(dst, merged)?;
        Ok(Reply::Ok)
    }

    /// Composites all mapped windows into a root-window image.
    fn composite_root(&self) -> Vec<u8> {
        let screen = self.config.screen;
        let mut root = vec![0u8; screen.area() as usize];
        for id in self.windows.stacking_order() {
            let Ok(window) = self.windows.get(*id) else {
                continue;
            };
            if !window.mapped() {
                continue;
            }
            let Some(clip) = screen.intersect(&window.rect()) else {
                continue;
            };
            let rect = window.rect();
            for row in clip.y..clip.bottom() {
                for col in clip.x..clip.right() {
                    let src_index =
                        ((row - rect.y) as usize) * rect.width as usize + (col - rect.x) as usize;
                    let dst_index = ((row - screen.y) as usize) * screen.width as usize
                        + (col - screen.x) as usize;
                    root[dst_index] = window.pixels()[src_index];
                }
            }
        }
        root
    }

    // ---------------------------------------------------------------
    // Selections (Figure 6)
    // ---------------------------------------------------------------

    fn set_selection_owner(
        &mut self,
        client: ClientId,
        pid: Pid,
        selection: Atom,
        window: WindowId,
        link: &mut dyn MonitorLink,
    ) -> Result<Reply, XError> {
        self.owned_window(client, window)?;
        let now = self.clock.now();
        if self.config.overhaul_enabled {
            // Step 2 of Figure 6: a copy must be preceded by user input.
            if !link.query(pid, DisplayOp::Copy, now) {
                self.record(
                    now,
                    AuditCategory::PermissionDenied,
                    Some(pid),
                    format!("SetSelectionOwner {selection}"),
                );
                return Err(XError::BadAccess);
            }
            self.record(
                now,
                AuditCategory::PermissionGranted,
                Some(pid),
                format!("SetSelectionOwner {selection}"),
            );
        }
        let state = self.selections.state_mut(&selection);
        let previous = state.owner;
        state.owner = Some((client, window));
        if let Some((old_client, _)) = previous {
            if old_client != client {
                let _ = self
                    .clients
                    .deliver(old_client, XEvent::SelectionClear { selection });
            }
        }
        Ok(Reply::Ok)
    }

    fn convert_selection(
        &mut self,
        client: ClientId,
        pid: Pid,
        selection: Atom,
        requestor: WindowId,
        property: Atom,
        link: &mut dyn MonitorLink,
    ) -> Result<Reply, XError> {
        self.owned_window(client, requestor)?;
        let now = self.clock.now();
        if self.config.overhaul_enabled {
            // Step 6 of Figure 6: a paste must be preceded by user input.
            if !link.query(pid, DisplayOp::Paste, now) {
                self.record(
                    now,
                    AuditCategory::PermissionDenied,
                    Some(pid),
                    format!("ConvertSelection {selection}"),
                );
                return Err(XError::BadAccess);
            }
            self.record(
                now,
                AuditCategory::PermissionGranted,
                Some(pid),
                format!("ConvertSelection {selection}"),
            );
        }
        let Some((owner_client, owner_window)) = self.selections.state_mut(&selection).owner else {
            // No owner: ICCCM answers with a notify carrying no property.
            self.clients.deliver(
                client,
                XEvent::SelectionNotify {
                    selection,
                    property: Atom::new("NONE"),
                },
            )?;
            return Ok(Reply::Ok);
        };
        // Fail closed on a stale owner: if the owning client is gone (its
        // connection died without the full disconnect cleanup) or the window
        // it asserted ownership through no longer exists, the interaction
        // evidence behind the ownership is stale — clear the record and deny
        // rather than brokering a paste sourced from it.
        if self.clients.get(owner_client).is_err() || self.windows.get(owner_window).is_err() {
            let state = self.selections.state_mut(&selection);
            state.owner = None;
            state.transfer = None;
            self.tracer.event(
                "x.selection.stale-owner",
                now,
                &[("pid", TraceValue::U64(u64::from(pid.as_raw())))],
            );
            self.record(
                now,
                AuditCategory::PermissionDenied,
                Some(pid),
                format!("ConvertSelection {selection}: stale owner, failing closed"),
            );
            return Err(XError::BadAccess);
        }
        self.selections.state_mut(&selection).transfer = Some(Transfer {
            source: owner_client,
            target: client,
            requestor,
            property: property.clone(),
            data_stored: false,
            notified: false,
        });
        // Step 7: the server relays a SelectionRequest to the owner.
        self.clients.deliver(
            owner_client,
            XEvent::SelectionRequest {
                selection,
                requestor,
                property,
            },
        )?;
        Ok(Reply::Ok)
    }

    fn change_property(
        &mut self,
        client: ClientId,
        window: WindowId,
        property: Atom,
        data: Vec<u8>,
    ) -> Result<Reply, XError> {
        let is_owner = self.windows.get(window)?.owner() == client;
        let in_flight_source = self
            .selections
            .transfer_for_property(window, &property)
            .map(|(_, t)| t.source == client)
            .unwrap_or(false);
        // Stock X11 lets any client write properties anywhere; Overhaul
        // tightens cross-client writes to step 8 of Figure 6 (the transfer
        // *source* writing into the requestor's window).
        if self.config.overhaul_enabled && !is_owner && !in_flight_source {
            return Err(XError::BadMatch);
        }
        self.windows.set_property(window, property.clone(), data)?;
        if in_flight_source {
            if let Some((_, transfer)) =
                self.selections.transfer_for_property_mut(window, &property)
            {
                transfer.data_stored = true;
            }
        }
        self.notify_property_change(window, &property);
        Ok(Reply::Ok)
    }

    fn get_property(
        &mut self,
        client: ClientId,
        window: WindowId,
        property: Atom,
        delete: bool,
    ) -> Result<Reply, XError> {
        let now = self.clock.now();
        if self.config.overhaul_enabled {
            if let Some((_, transfer)) = self.selections.transfer_for_property(window, &property) {
                if transfer.data_stored && transfer.target != client {
                    // Anti-snooping: in-flight clipboard data is only
                    // readable by the paste target.
                    let pid = self.clients.pid_of(client)?;
                    self.record(
                        now,
                        AuditCategory::ProtocolAttackBlocked,
                        Some(pid),
                        format!("GetProperty snoop on in-flight {property}"),
                    );
                    return Err(XError::BadAccess);
                }
            }
        }
        let value = self.windows.take_property(window, &property, delete)?;
        if delete && value.is_some() {
            // Step 13: the target removes the consumed clipboard property;
            // this also closes the transfer window.
            let finished: Option<Atom> = self
                .selections
                .transfer_for_property(window, &property)
                .map(|(atom, _)| atom.clone());
            if let Some(selection) = finished {
                self.selections.finish_transfer(&selection);
            }
            self.notify_property_change(window, &property);
        }
        Ok(Reply::Property(value))
    }

    fn send_event(
        &mut self,
        client: ClientId,
        pid: Pid,
        target: WindowId,
        event: XEvent,
    ) -> Result<Reply, XError> {
        let now = self.clock.now();
        let target_owner = self.windows.get(target)?.owner();
        match event {
            XEvent::Input { payload, .. } => {
                // Core-protocol SendEvent: deliverable, but the synthetic
                // flag is forced on — receivers and the trusted input path
                // can always tell.
                self.clients.deliver(
                    target_owner,
                    XEvent::Input {
                        window: target,
                        payload,
                        synthetic: true,
                    },
                )?;
                if self.config.overhaul_enabled {
                    self.record(
                        now,
                        AuditCategory::SyntheticInputFiltered,
                        Some(pid),
                        format!("SendEvent input toward {target}"),
                    );
                }
                Ok(Reply::Ok)
            }
            XEvent::SelectionNotify {
                selection,
                property,
            } => {
                // Legitimate only as step 9 of an in-flight transfer the
                // server initiated; anything else is the bypass attack.
                let valid = self
                    .selections
                    .state(&selection)
                    .and_then(|s| s.transfer.as_ref())
                    .map(|t| {
                        t.source == client
                            && t.requestor == target
                            && t.property == property
                            && t.data_stored
                    })
                    .unwrap_or(false);
                if valid || !self.config.overhaul_enabled {
                    if let Some(state) = self.selections.state_mut(&selection).transfer.as_mut() {
                        state.notified = true;
                    }
                    self.clients.deliver(
                        target_owner,
                        XEvent::SelectionNotify {
                            selection,
                            property,
                        },
                    )?;
                    Ok(Reply::Ok)
                } else {
                    self.record(
                        now,
                        AuditCategory::ProtocolAttackBlocked,
                        Some(pid),
                        format!("forged SelectionNotify for {selection}"),
                    );
                    Err(XError::BadAccess)
                }
            }
            XEvent::SelectionRequest {
                selection,
                requestor,
                property,
            } => {
                if self.config.overhaul_enabled {
                    // Only the server issues SelectionRequest (step 7); a
                    // client sending one is bypassing the paste check.
                    self.record(
                        now,
                        AuditCategory::ProtocolAttackBlocked,
                        Some(pid),
                        format!("forged SelectionRequest for {selection}"),
                    );
                    Err(XError::BadAccess)
                } else {
                    // Stock X relays the event as-is; the attack works.
                    self.clients.deliver(
                        target_owner,
                        XEvent::SelectionRequest {
                            selection,
                            requestor,
                            property,
                        },
                    )?;
                    Ok(Reply::Ok)
                }
            }
            other @ (XEvent::PropertyNotify { .. } | XEvent::SelectionClear { .. }) => {
                // Harmless event classes pass through, flagged synthetic by
                // construction (they arrive via SendEvent).
                self.clients.deliver(target_owner, other)?;
                Ok(Reply::Ok)
            }
        }
    }

    /// Delivers `PropertyNotify` to watchers, suppressing delivery to
    /// everyone but the paste target while clipboard data is in flight.
    fn notify_property_change(&mut self, window: WindowId, property: &Atom) {
        let restricted_to = if self.config.overhaul_enabled {
            self.selections
                .transfer_for_property(window, property)
                .filter(|(_, t)| t.data_stored)
                .map(|(_, t)| t.target)
        } else {
            None
        };
        let now = self.clock.now();
        for watcher in self.clients.property_watchers(window) {
            if let Some(target) = restricted_to {
                if watcher != target {
                    let pid = self.clients.pid_of(watcher).ok();
                    self.record(
                        now,
                        AuditCategory::ProtocolAttackBlocked,
                        pid,
                        format!("PropertyNotify for in-flight {property} suppressed"),
                    );
                    continue;
                }
            }
            let _ = self.clients.deliver(
                watcher,
                XEvent::PropertyNotify {
                    window,
                    property: property.clone(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests;
