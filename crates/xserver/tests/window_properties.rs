//! Property-based tests for the window tree and geometry — invariants the
//! clickjacking defense depends on.

use overhaul_sim::Timestamp;
use overhaul_xserver::geometry::{Point, Rect};
use overhaul_xserver::protocol::ClientId;
use overhaul_xserver::window::{WindowTree, OCCLUSION_LIMIT};
use proptest::prelude::*;

fn rect_strategy() -> impl Strategy<Value = Rect> {
    (-50i32..200, -50i32..200, 1u32..150, 1u32..150).prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
}

#[derive(Debug, Clone)]
enum TreeOp {
    Create(u32, Rect),
    MapLast,
    UnmapLast,
    RaiseFirst,
    DestroyLast,
}

fn op_strategy() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (1u32..4, rect_strategy()).prop_map(|(c, r)| TreeOp::Create(c, r)),
        Just(TreeOp::MapLast),
        Just(TreeOp::UnmapLast),
        Just(TreeOp::RaiseFirst),
        Just(TreeOp::DestroyLast),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Coverage is always a fraction in [0, 1].
    #[test]
    fn coverage_is_a_fraction(target in rect_strategy(),
                              covers in prop::collection::vec(rect_strategy(), 0..6)) {
        let c = target.coverage_by(&covers);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&c), "{}", c);
    }

    /// Adding more covering rectangles never decreases coverage.
    #[test]
    fn coverage_is_monotone(target in rect_strategy(),
                            covers in prop::collection::vec(rect_strategy(), 1..6)) {
        let partial = target.coverage_by(&covers[..covers.len() - 1]);
        let full = target.coverage_by(&covers);
        prop_assert!(full + 1e-9 >= partial);
    }

    /// Intersection is symmetric and contained in both operands.
    #[test]
    fn intersection_is_symmetric_and_contained(a in rect_strategy(), b in rect_strategy()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        if let Some(i) = a.intersect(&b) {
            prop_assert!(i.area() <= a.area());
            prop_assert!(i.area() <= b.area());
            prop_assert!(i.x >= a.x && i.right() <= a.right());
            prop_assert!(i.y >= b.y.min(a.y).max(i.y));
        }
    }

    /// Tree invariants under arbitrary operation sequences:
    /// * `topmost_at` only ever returns a mapped window containing the point;
    /// * a visible window is always mapped;
    /// * an unoccluded mapped window is always visible.
    #[test]
    fn tree_invariants(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut tree = WindowTree::new();
        let mut ids = Vec::new();
        let mut now = Timestamp::ZERO;
        for op in ops {
            now = Timestamp::from_millis(now.as_millis() + 10);
            match op {
                TreeOp::Create(client, rect) => {
                    ids.push(tree.create(ClientId::from_raw(client), rect));
                }
                TreeOp::MapLast => {
                    if let Some(id) = ids.last() {
                        let _ = tree.map(*id, now);
                    }
                }
                TreeOp::UnmapLast => {
                    if let Some(id) = ids.last() {
                        let _ = tree.unmap(*id, now);
                    }
                }
                TreeOp::RaiseFirst => {
                    if let Some(id) = ids.first() {
                        let _ = tree.raise(*id, now);
                    }
                }
                TreeOp::DestroyLast => {
                    if let Some(id) = ids.pop() {
                        let _ = tree.destroy(id, now);
                    }
                }
            }
        }
        // Hit tests return mapped windows containing the probe point.
        for probe in [Point::new(0, 0), Point::new(50, 50), Point::new(120, 30)] {
            if let Some(hit) = tree.topmost_at(probe) {
                let window = tree.get(hit).unwrap();
                prop_assert!(window.mapped());
                prop_assert!(window.rect().contains(probe));
            }
        }
        // Visibility implies mapped; unoccluded implies visible.
        let order: Vec<_> = tree.stacking_order().to_vec();
        for (index, id) in order.iter().enumerate() {
            let Ok(window) = tree.get(*id) else { continue };
            if window.visible_since().is_some() {
                prop_assert!(window.mapped(), "{} visible but unmapped", id);
            }
            if window.mapped() && window.rect().area() > 0 {
                let covers: Vec<Rect> = order[index + 1..]
                    .iter()
                    .filter_map(|above| tree.get(*above).ok())
                    .filter(|w| w.mapped())
                    .map(|w| w.rect())
                    .collect();
                let coverage = window.rect().coverage_by(&covers);
                if coverage <= OCCLUSION_LIMIT {
                    prop_assert!(
                        window.visible_since().is_some(),
                        "{} unoccluded ({}) but invisible",
                        id,
                        coverage
                    );
                } else {
                    prop_assert!(
                        window.visible_since().is_none(),
                        "{} occluded ({}) but visible",
                        id,
                        coverage
                    );
                }
            }
        }
    }

    /// `visible_since` never moves backwards while a window stays visible.
    #[test]
    fn visibility_clock_is_stable(raises in prop::collection::vec(0usize..3, 1..10)) {
        let mut tree = WindowTree::new();
        let solo = tree.create(ClientId::from_raw(1), Rect::new(0, 0, 50, 50));
        // Disjoint windows: raising them never occludes `solo`.
        let others = [
            tree.create(ClientId::from_raw(2), Rect::new(100, 0, 50, 50)),
            tree.create(ClientId::from_raw(3), Rect::new(200, 0, 50, 50)),
            tree.create(ClientId::from_raw(4), Rect::new(300, 0, 50, 50)),
        ];
        let mut now = Timestamp::from_millis(10);
        tree.map(solo, now).unwrap();
        for other in others {
            tree.map(other, now).unwrap();
        }
        let since = tree.get(solo).unwrap().visible_since().unwrap();
        for raise in raises {
            now = Timestamp::from_millis(now.as_millis() + 100);
            tree.raise(others[raise], now).unwrap();
            prop_assert_eq!(tree.get(solo).unwrap().visible_since(), Some(since));
        }
    }
}
