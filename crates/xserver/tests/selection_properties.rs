//! Property-based tests over random ICCCM selection-protocol traffic:
//! whatever request sequence clients throw at the server, the clipboard
//! state machine must preserve its safety invariants.

use overhaul_sim::{Clock, Pid, SimDuration};
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, ClientId, DisplayOp, MonitorLink, Reply, Request, XEvent};
use overhaul_xserver::window::WindowId;
use overhaul_xserver::{XConfig, XServer};
use proptest::prelude::*;

/// A link that grants everything — the properties under test are about
/// protocol-structure safety, independent of temporal policy.
struct AlwaysGrant;

impl MonitorLink for AlwaysGrant {
    fn notify_interaction(&mut self, _pid: Pid, _at: overhaul_sim::Timestamp) {}

    fn query(&mut self, _pid: Pid, _op: DisplayOp, _at: overhaul_sim::Timestamp) -> bool {
        true
    }
}

#[derive(Debug, Clone)]
enum SelOp {
    Own(usize),
    Convert(usize),
    ChangeProp(usize, usize), // actor, target window index
    GetProp(usize, usize, bool),
    SendNotify(usize, usize),
    Drain(usize),
}

fn op_strategy(clients: usize) -> impl Strategy<Value = SelOp> {
    let c = clients;
    prop_oneof![
        (0..c).prop_map(SelOp::Own),
        (0..c).prop_map(SelOp::Convert),
        (0..c, 0..c).prop_map(|(a, t)| SelOp::ChangeProp(a, t)),
        (0..c, 0..c, any::<bool>()).prop_map(|(a, t, d)| SelOp::GetProp(a, t, d)),
        (0..c, 0..c).prop_map(|(a, t)| SelOp::SendNotify(a, t)),
        (0..c).prop_map(SelOp::Drain),
    ]
}

struct Rig {
    x: XServer,
    clients: Vec<ClientId>,
    windows: Vec<WindowId>,
}

fn rig(n: usize) -> Rig {
    let clock = Clock::new();
    let mut x = XServer::new(clock.clone(), XConfig::default());
    let mut clients = Vec::new();
    let mut windows = Vec::new();
    for i in 0..n {
        let client = x.connect_client(Pid::from_raw(100 + i as u32));
        let window = match x
            .request(
                client,
                Request::CreateWindow {
                    rect: Rect::new(i as i32 * 120, 0, 100, 100),
                },
                &mut AlwaysGrant,
            )
            .unwrap()
        {
            Reply::Window(w) => w,
            _ => unreachable!(),
        };
        x.request(client, Request::MapWindow { window }, &mut AlwaysGrant)
            .unwrap();
        clients.push(client);
        windows.push(window);
    }
    clock.advance(SimDuration::from_secs(1));
    Rig {
        x,
        clients,
        windows,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary selection traffic:
    /// * the server never panics and every request returns Ok or a clean
    ///   X error;
    /// * at most one client owns the CLIPBOARD at any time;
    /// * a client that never participated in a transfer can never read an
    ///   in-flight property belonging to another client's transfer.
    #[test]
    fn selection_state_machine_is_safe(ops in prop::collection::vec(op_strategy(3), 1..60)) {
        let mut r = rig(3);
        let selection = Atom::clipboard();
        let property = Atom::new("XSEL_DATA");
        for op in &ops {
            let result = match *op {
                SelOp::Own(i) => r.x.request(
                    r.clients[i],
                    Request::SetSelectionOwner { selection: selection.clone(), window: r.windows[i] },
                    &mut AlwaysGrant,
                ),
                SelOp::Convert(i) => r.x.request(
                    r.clients[i],
                    Request::ConvertSelection {
                        selection: selection.clone(),
                        requestor: r.windows[i],
                        property: property.clone(),
                    },
                    &mut AlwaysGrant,
                ),
                SelOp::ChangeProp(a, t) => r.x.request(
                    r.clients[a],
                    Request::ChangeProperty {
                        window: r.windows[t],
                        property: property.clone(),
                        data: vec![a as u8],
                    },
                    &mut AlwaysGrant,
                ),
                SelOp::GetProp(a, t, delete) => r.x.request(
                    r.clients[a],
                    Request::GetProperty { window: r.windows[t], property: property.clone(), delete },
                    &mut AlwaysGrant,
                ),
                SelOp::SendNotify(a, t) => r.x.request(
                    r.clients[a],
                    Request::SendEvent {
                        target: r.windows[t],
                        event: Box::new(XEvent::SelectionNotify {
                            selection: selection.clone(),
                            property: property.clone(),
                        }),
                    },
                    &mut AlwaysGrant,
                ),
                SelOp::Drain(i) => {
                    let _ = r.x.drain_events(r.clients[i]);
                    Ok(Reply::Ok)
                }
            };
            // Every outcome is a clean result, never a panic.
            let _ = result;
            // Invariant: single owner.
            let owner = match r
                .x
                .request(r.clients[0], Request::GetSelectionOwner { selection: selection.clone() }, &mut AlwaysGrant)
                .unwrap()
            {
                Reply::SelectionOwner(o) => o,
                _ => unreachable!(),
            };
            if let Some(owner) = owner {
                prop_assert!(r.clients.contains(&owner));
            }
        }
    }

    /// A forged `SelectionNotify` for a selection with no in-flight
    /// transfer is always rejected, regardless of prior traffic shape.
    #[test]
    fn forged_notify_always_rejected_without_transfer(owner_first in any::<bool>()) {
        let mut r = rig(2);
        if owner_first {
            r.x.request(
                r.clients[0],
                Request::SetSelectionOwner { selection: Atom::clipboard(), window: r.windows[0] },
                &mut AlwaysGrant,
            ).unwrap();
        }
        let result = r.x.request(
            r.clients[1],
            Request::SendEvent {
                target: r.windows[0],
                event: Box::new(XEvent::SelectionNotify {
                    selection: Atom::clipboard(),
                    property: Atom::new("P"),
                }),
            },
            &mut AlwaysGrant,
        );
        prop_assert!(result.is_err());
    }
}
