//! Fleet-scale chaos harness: many supervised [`System`]s in parallel.
//!
//! The paper evaluates Overhaul one machine at a time; the roadmap's north
//! star is fleet scale — thousands of independently-seeded machines driven
//! through randomized workload + fault + attack schedules at once. This
//! crate is the robustness layer that makes such a fleet *survivable and
//! debuggable*:
//!
//! * **Decorrelated shards.** Every shard's workload/fault seed comes from
//!   a dedicated splitmix stream off the master seed
//!   ([`overhaul_sim::SimRng::stream_seed`]), so shard schedules do not
//!   track each other the way naive `seed + i` derivation would.
//! * **Containment.** Each shard op runs under `catch_unwind`; a panic
//!   becomes a structured failure, not a torn fleet. A virtual-time
//!   watchdog declares shards stuck past their progress deadline, and a
//!   wall-clock supervisor cancels shards that stop making real progress.
//! * **Graceful degradation.** A configurable failure budget lets the
//!   fleet keep running, aggregating, and reporting after bad shards
//!   instead of aborting on the first one.
//! * **Bisectable failure triples.** Every failure — panic, hang, policy
//!   violation, replay divergence — is persisted as a
//!   `(seed, sealed EventLog, last-good snapshot)` triple
//!   ([`FailureTriple`]): replaying the log reproduces the byte-identical
//!   `state_hash` at the failure point, from boot or from the snapshot.
//!   An automatic replay-based shrinker ([`shrink_triple`]) trims the log
//!   to a minimal reproducer.
//! * **Fleet metrics.** Per-shard Prometheus registries merge into one
//!   fleet page ([`FleetReport::metrics`]) with shard/failure/divergence
//!   counters on top.
//!
//! The `fleet_soak` binary drives all of this from the command line
//! (`--quick` for CI).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod archive;
pub mod failure;
pub mod fleet;
pub mod schedule;
pub mod shard;
pub mod shrink;

pub use archive::{
    find_archive, load_archives, load_merged, resolve_exemplar, resolve_exemplar_via,
    shard_file_name, triple_file_name, write_soak_dir, ExemplarResolution, ShardArchive,
    MERGED_SKETCH_FILE,
};
pub use failure::{
    replay_triple, replay_triple_from_snapshot, FailureKind, FailureTriple, Reproduction,
};
pub use fleet::{run_fleet, FleetConfig, FleetReport};
pub use schedule::{CampaignSlot, ChaosOp, ChaosSpec, FleetWorkload, ShardOp, ShardPlan};
pub use shard::{quiet_injected_panics, run_shard, ShardBeat, ShardOutcome, ShardReport};
pub use shrink::{shrink_triple, ShrinkReport};

use overhaul_core::{assert_send, EventLog, System};
use overhaul_sim::Snapshot;

// The harness moves plans, logs, snapshots, and (in principle) whole
// machines across worker threads. These compile-time audits are the
// contract: if a refactor smuggles a non-`Send` handle (`Rc`, `RefCell`)
// into any of them, the fleet crate stops building — long before a soak
// run could tear.
const _: () = {
    assert_send::<System>();
    assert_send::<EventLog>();
    assert_send::<Snapshot>();
    assert_send::<ShardPlan>();
    assert_send::<ShardReport>();
    assert_send::<FailureTriple>();
};
