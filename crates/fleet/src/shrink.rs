//! Replay-based event-log shrinking (ddmin-lite).
//!
//! A failure triple straight off a shard drags the whole recorded run
//! along — typically a hundred-plus events, most irrelevant to the
//! failure. [`shrink_triple`] greedily removes event chunks (halving the
//! chunk size down to single events) and keeps a candidate only if,
//! after *resealing* (replaying the shortened log from boot to a fresh
//! pre-failure hash and checkpoint), the triple still reproduces the
//! same failure kind via [`replay_triple`]. The result is a minimal-ish
//! reproducer with the same byte-identical-replay guarantee as the
//! original.

use std::panic::{self, AssertUnwindSafe};

use overhaul_core::{apply_event, Event, EventLog, System};

use crate::failure::{replay_triple, FailureKind, FailureTriple};

/// The outcome of shrinking one triple.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The best (shortest still-reproducing) triple found. Equal to the
    /// input when nothing could be removed.
    pub triple: FailureTriple,
    /// Events in the input triple's log.
    pub original_events: usize,
    /// Events in the shrunk triple's log.
    pub shrunk_events: usize,
    /// Replays spent searching (reseals + reproduction checks).
    pub replays: usize,
}

impl ShrinkReport {
    /// A no-op report wrapping an unshrunk triple.
    pub fn unshrunk(triple: FailureTriple) -> ShrinkReport {
        let n = triple.log.events.len();
        ShrinkReport {
            triple,
            original_events: n,
            shrunk_events: n,
            replays: 0,
        }
    }
}

/// Shrinks `triple`'s event log, spending at most `max_replays` replay
/// attempts. Divergence and boot triples pass through unshrunk: a boot
/// failure has no events, and a divergence is a property of the *live*
/// run against its replay — a shrunk prefix has no live hash to diverge
/// from.
pub fn shrink_triple(triple: &FailureTriple, max_replays: usize) -> ShrinkReport {
    match triple.kind {
        FailureKind::Boot { .. } | FailureKind::Divergence { .. } => {
            return ShrinkReport::unshrunk(triple.clone())
        }
        _ => {}
    }

    let original_events = triple.log.events.len();
    let mut best = triple.clone();
    let mut replays = 0usize;

    let mut chunk = original_events.div_ceil(2).max(1);
    loop {
        let mut i = 0;
        while i < best.log.events.len() && replays < max_replays {
            let mut events = best.log.events.clone();
            let end = (i + chunk).min(events.len());
            events.drain(i..end);

            replays += 1;
            let candidate = match reseal(triple, events) {
                Some(c) => c,
                None => {
                    i += chunk;
                    continue;
                }
            };
            replays += 1;
            if replay_triple(&candidate).is_reproduced() {
                // Keep the cut; retry the same position at this size.
                best = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 || replays >= max_replays {
            break;
        }
        chunk = (chunk / 2).max(1);
    }

    ShrinkReport {
        shrunk_events: best.log.events.len(),
        triple: best,
        original_events,
        replays,
    }
}

/// Rebuilds a valid triple around a shortened event list: replays it from
/// boot, seals the new pre-failure hash, and takes a fresh last-good
/// checkpoint at the very end (so the snapshot path is trivially short).
/// Returns `None` if the shortened list no longer applies cleanly (an
/// event panics against the altered state) or the machine will not boot.
fn reseal(original: &FailureTriple, events: Vec<Event>) -> Option<FailureTriple> {
    let config = original.log.config.clone();
    let built = panic::catch_unwind(AssertUnwindSafe(|| {
        let mut system = System::try_new(config.clone()).ok()?;
        for event in &events {
            apply_event(&mut system, event);
        }
        Some(system)
    }));
    let mut system = match built {
        Ok(Some(system)) => system,
        _ => return None,
    };
    let hash = system.state_hash();
    let snapshot = system.snapshot();
    Some(FailureTriple {
        index: original.index,
        seed: original.seed,
        kind: original.kind.clone(),
        snap_idx: events.len(),
        log: EventLog {
            config,
            events,
            final_state_hash: Some(hash),
            final_ledger_head: Some(system.ledger_head()),
        },
        snapshot,
        failing_op: original.failing_op.clone(),
        virtual_deadline: original.virtual_deadline,
        chain_head: system.ledger_head(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{replay_triple_from_snapshot, Reproduction};
    use crate::schedule::{ChaosSchedule, FleetWorkload, ShardPlan};
    use crate::shard::{quiet_injected_panics, run_shard, ShardBeat, ShardOutcome};

    fn failing_triple(master: u64, chaos: ChaosSchedule) -> FailureTriple {
        quiet_injected_panics();
        let mut plan = ShardPlan::derive(master, 0, &FleetWorkload::default());
        plan.chaos = chaos;
        let report = std::thread::Builder::new()
            .name("overhaul-shard-shrinktest".into())
            .spawn(move || run_shard(&plan, &ShardBeat::new()))
            .unwrap()
            .join()
            .unwrap();
        match report.outcome {
            ShardOutcome::Failed(t) => *t,
            ShardOutcome::Ok { .. } => panic!("shard was supposed to fail"),
        }
    }

    #[test]
    fn shrunk_panic_triple_is_smaller_and_still_reproduces() {
        let triple = failing_triple(
            71,
            ChaosSchedule {
                panic_at: Some(90),
                ..ChaosSchedule::default()
            },
        );
        let before = triple.log.events.len();
        let report = shrink_triple(&triple, 300);
        assert!(report.shrunk_events < before, "nothing shrank: {report:?}");
        // An injected panic needs no prelude at all.
        assert_eq!(report.shrunk_events, 0);
        let repro = replay_triple(&report.triple);
        assert!(repro.is_reproduced(), "shrunk triple: {repro:?}");
        assert_eq!(repro, replay_triple_from_snapshot(&report.triple));
    }

    #[test]
    fn shrink_respects_the_replay_budget() {
        let triple = failing_triple(
            72,
            ChaosSchedule {
                stall_at: Some(100),
                ..ChaosSchedule::default()
            },
        );
        let report = shrink_triple(&triple, 6);
        assert!(report.replays <= 6);
        assert!(replay_triple(&report.triple).is_reproduced());
    }

    #[test]
    fn divergence_triples_pass_through_unshrunk() {
        let triple = failing_triple(
            73,
            ChaosSchedule {
                panic_at: Some(50),
                ..ChaosSchedule::default()
            },
        );
        let fake = FailureTriple {
            kind: FailureKind::Divergence {
                expected: 1,
                got: 2,
            },
            ..triple
        };
        let report = shrink_triple(&fake, 100);
        assert_eq!(report.replays, 0);
        assert_eq!(report.original_events, report.shrunk_events);
    }

    #[test]
    fn shrunk_triple_survives_serialization() {
        let triple = failing_triple(
            74,
            ChaosSchedule {
                panic_at: Some(60),
                ..ChaosSchedule::default()
            },
        );
        let report = shrink_triple(&triple, 200);
        let bytes = report.triple.to_bytes();
        let decoded = FailureTriple::from_bytes(&bytes).expect("decode");
        assert!(matches!(
            replay_triple(&decoded),
            Reproduction::Reproduced { .. }
        ));
    }
}
