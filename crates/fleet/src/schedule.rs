//! Per-shard plans derived from a master seed.
//!
//! A [`ShardPlan`] is everything a worker needs to run one shard: the
//! shard's seed (a decorrelated splitmix stream off the master seed), the
//! boot configuration (including a seeded fault plan), the step budget,
//! and the chaos schedule (which step, if any, panics / stalls / spins).
//! The concrete [`overhaul_core::Event`] sequence is *generated live* by
//! the shard runner from the shard seed and recorded into an `EventLog` as
//! it is applied — reproduction never needs the generator, only the log.

use overhaul_apps::campaign::{CampaignKind, Expectation};
use overhaul_core::OverhaulConfig;
use overhaul_sim::{Dec, Enc, Pack, SimDuration, SimRng, SnapshotError, Timestamp};

/// A chaos injection the schedule can place on a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOp {
    /// Panic inside the shard (containment must convert it to a failure).
    Panic,
    /// Jump virtual time past the shard's progress deadline (the
    /// virtual-time watchdog must declare the shard hung).
    VirtualStall(SimDuration),
    /// Busy-loop in real time until cancelled (the wall-clock supervisor
    /// must cancel the shard).
    Spin,
}

impl Pack for ChaosOp {
    fn pack(&self, enc: &mut Enc) {
        match self {
            ChaosOp::Panic => enc.put_u8(0),
            ChaosOp::VirtualStall(d) => {
                enc.put_u8(1);
                d.pack(enc);
            }
            ChaosOp::Spin => enc.put_u8(2),
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(match dec.take_u8()? {
            0 => ChaosOp::Panic,
            1 => ChaosOp::VirtualStall(SimDuration::unpack(dec)?),
            2 => ChaosOp::Spin,
            _ => return Err(SnapshotError::BadValue("chaos op tag")),
        })
    }
}

/// One unit of shard work, as classified by the runner.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardOp {
    /// An ordinary recorded input.
    Sys(overhaul_core::Event),
    /// A recorded input whose outcome the policy oracle requires to be a
    /// denial (the spy process opening a device it never interacted for).
    /// Legacy deny-all form; kept so old failure-triple bytes decode.
    ExpectDeny(overhaul_core::Event),
    /// An injected chaos action (never recorded into the event log).
    Chaos(ChaosOp),
    /// A recorded input judged against an explicit expectation — the
    /// expectation-aware oracle form, which (unlike [`ShardOp::ExpectDeny`])
    /// can represent a documented `ExpectedBypass`.
    Expect(Expectation, overhaul_core::Event),
}

impl Pack for ShardOp {
    fn pack(&self, enc: &mut Enc) {
        match self {
            ShardOp::Sys(e) => {
                enc.put_u8(0);
                e.pack(enc);
            }
            ShardOp::ExpectDeny(e) => {
                enc.put_u8(1);
                e.pack(enc);
            }
            ShardOp::Chaos(c) => {
                enc.put_u8(2);
                c.pack(enc);
            }
            ShardOp::Expect(expect, e) => {
                enc.put_u8(3);
                expect.pack(enc);
                e.pack(enc);
            }
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(match dec.take_u8()? {
            0 => ShardOp::Sys(Pack::unpack(dec)?),
            1 => ShardOp::ExpectDeny(Pack::unpack(dec)?),
            2 => ShardOp::Chaos(Pack::unpack(dec)?),
            3 => ShardOp::Expect(Pack::unpack(dec)?, Pack::unpack(dec)?),
            _ => return Err(SnapshotError::BadValue("shard op tag")),
        })
    }
}

/// Chaos intensity knobs, all per-shard probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Probability a shard gets an injected panic at a random step.
    pub panic_p: f64,
    /// Probability a shard gets a virtual-time stall at a random step.
    pub stall_p: f64,
    /// Probability a shard gets a wall-clock spin at a random step.
    pub spin_p: f64,
    /// Scales the seeded channel/VFS fault probabilities in `[0, 1]`.
    pub fault_intensity: f64,
}

impl ChaosSpec {
    /// No injected chaos; seeded faults at moderate intensity.
    pub fn faults_only() -> Self {
        ChaosSpec {
            panic_p: 0.0,
            stall_p: 0.0,
            spin_p: 0.0,
            fault_intensity: 0.5,
        }
    }

    /// The full soak mix: faults plus occasional injected panics and
    /// hangs, calibrated so a few-hundred-shard fleet sees several of
    /// each.
    pub fn soak() -> Self {
        ChaosSpec {
            panic_p: 0.04,
            stall_p: 0.03,
            spin_p: 0.01,
            fault_intensity: 0.6,
        }
    }
}

/// Workload shape shared by every shard of a fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetWorkload {
    /// Steps (shard ops) per shard.
    pub steps: usize,
    /// Maximum concurrently running GUI apps per shard.
    pub apps: usize,
    /// Boot the deliberately permissive grant-all policy instead of the
    /// protected one. The expectation-aware oracle documents the grants as
    /// `ExpectedBypass` ("grants by design"), so grant-all shards complete
    /// cleanly — unless [`FleetWorkload::oracle_strict`] is also set.
    pub grant_all: bool,
    /// Probability a shard interleaves a seeded attack campaign with its
    /// chaos steps.
    pub campaign_p: f64,
    /// Keep expecting `Blocked` even on a grant-all boot. This is the
    /// forced defense-regression lever: strict expectations on a
    /// permissive machine must produce `DefenseRegression` triples, which
    /// proves the detection/bisection path end to end.
    pub oracle_strict: bool,
    /// Chaos injection knobs.
    pub chaos: ChaosSpec,
}

impl Default for FleetWorkload {
    fn default() -> Self {
        FleetWorkload {
            steps: 120,
            apps: 3,
            grant_all: false,
            campaign_p: 0.0,
            oracle_strict: false,
            chaos: ChaosSpec::faults_only(),
        }
    }
}

/// Chaos placements for one shard (step indices, if drawn).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSchedule {
    /// Step at which to panic.
    pub panic_at: Option<usize>,
    /// Step at which to jump virtual time past the deadline.
    pub stall_at: Option<usize>,
    /// Step at which to spin in real time.
    pub spin_at: Option<usize>,
}

/// A seeded campaign placement within a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSlot {
    /// Generated step index at which the campaign's stages interleave.
    pub at_step: usize,
    /// Which catalog campaign runs.
    pub kind: CampaignKind,
}

/// Everything a worker needs to run one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    /// Shard index within the fleet.
    pub index: usize,
    /// The shard's decorrelated seed (fully determines the shard).
    pub seed: u64,
    /// Boot configuration, fault plan included.
    pub config: OverhaulConfig,
    /// Step budget.
    pub steps: usize,
    /// Chaos placements.
    pub chaos: ChaosSchedule,
    /// Seeded campaign placement, if drawn.
    pub campaign: Option<CampaignSlot>,
    /// Keep strict `Blocked` expectations even on a grant-all boot (the
    /// forced defense-regression lever).
    pub oracle_strict: bool,
    /// Whether the oracle may excuse expected-grant denials as fail-closed
    /// responses to the shard's seeded fault plan (true whenever faults
    /// are active and strict mode is off). Wrongful *grants* are never
    /// excused.
    pub lenient_oracle: bool,
    /// Virtual instant past which the shard counts as hung.
    pub virtual_deadline: Timestamp,
}

impl ShardPlan {
    /// Derives shard `index`'s plan from the fleet master seed. The same
    /// `(master, index, workload)` always yields the same plan, and the
    /// plan itself is recoverable from `seed` alone via
    /// [`ShardPlan::from_seed`] — which is why a failure triple only needs
    /// to persist the seed.
    pub fn derive(master: u64, index: usize, workload: &FleetWorkload) -> ShardPlan {
        let seed = SimRng::stream_seed(master, index as u64);
        ShardPlan::from_seed(seed, index, workload)
    }

    /// Rebuilds a plan from a shard seed (the reproduction path).
    pub fn from_seed(seed: u64, index: usize, workload: &FleetWorkload) -> ShardPlan {
        let mut rng = SimRng::seeded(seed);

        // Seeded fault plan, scaled by intensity. Sub-seed drawn from the
        // shard stream so fault schedules are decorrelated across shards.
        let intensity = workload.chaos.fault_intensity.clamp(0.0, 1.0);
        let mut spec = overhaul_sim::FaultSpec::quiet(rng.next_u64())
            .with_drop_p(rng.unit() * 0.12 * intensity)
            .with_delay_p(rng.unit() * 0.25 * intensity)
            .with_duplicate_p(rng.unit() * 0.2 * intensity)
            .with_reorder_p(rng.unit() * 0.15 * intensity)
            .with_vfs_stat_fail_p(rng.unit() * 0.08 * intensity);
        let crashes = rng.range(0, 3);
        if crashes > 0 && intensity > 0.0 {
            let mut at = Vec::new();
            for _ in 0..crashes {
                at.push(Timestamp::from_millis(rng.range(2_000, 45_000)));
            }
            at.sort();
            spec = spec.with_x_crashes(at);
        }

        let base = if workload.grant_all {
            OverhaulConfig::grant_all()
        } else {
            OverhaulConfig::protected()
        };
        let config = base
            .with_delta(SimDuration::from_millis(rng.range(1_000, 3_000)))
            .with_fault(spec);

        let chaos = ChaosSchedule {
            panic_at: Self::draw_step(&mut rng, workload.chaos.panic_p, workload.steps),
            stall_at: Self::draw_step(&mut rng, workload.chaos.stall_p, workload.steps),
            spin_at: Self::draw_step(&mut rng, workload.chaos.spin_p, workload.steps),
        };

        // Campaign placement. All three draws happen unconditionally so
        // the stream stays stable whatever campaign_p is.
        let campaign_hit = rng.chance(workload.campaign_p);
        let campaign_step = rng.range(0, workload.steps.max(1) as u64) as usize;
        let campaign_kind =
            CampaignKind::ALL[rng.range(0, CampaignKind::ALL.len() as u64) as usize];
        let campaign = campaign_hit.then_some(CampaignSlot {
            at_step: campaign_step,
            kind: campaign_kind,
        });

        // Generous deadline: legit steps advance at most ~1 s each, so a
        // healthy shard finishes far below it. Only a stall (or a real
        // livelock bug) crosses it. Campaign stages advance tens of
        // virtual seconds on top of the step budget.
        let mut virtual_deadline = Timestamp::from_millis(workload.steps as u64 * 5_000 + 60_000);
        if campaign.is_some() {
            virtual_deadline = Timestamp::from_millis(virtual_deadline.as_millis() + 120_000);
        }

        ShardPlan {
            index,
            seed,
            config,
            steps: workload.steps,
            chaos,
            campaign,
            oracle_strict: workload.oracle_strict,
            lenient_oracle: intensity > 0.0 && !workload.oracle_strict,
            virtual_deadline,
        }
    }

    fn draw_step(rng: &mut SimRng, p: f64, steps: usize) -> Option<usize> {
        // Both draws always happen, so the downstream stream does not
        // depend on which probabilities are zero.
        let hit = rng.chance(p);
        let step = rng.range(0, steps.max(1) as u64) as usize;
        hit.then_some(step)
    }

    /// The virtual-stall jump: far enough past the deadline that no
    /// legitimate op sequence can explain it.
    pub fn stall_jump(&self) -> SimDuration {
        SimDuration::from_millis(self.virtual_deadline.as_millis() + 600_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_index_sensitive() {
        let w = FleetWorkload::default();
        let a = ShardPlan::derive(1, 0, &w);
        let b = ShardPlan::derive(1, 0, &w);
        let c = ShardPlan::derive(1, 1, &w);
        assert_eq!(a, b);
        assert_ne!(a.seed, c.seed);
        assert_ne!(a.config, c.config, "shard configs must be decorrelated");
    }

    #[test]
    fn plan_recoverable_from_seed_alone() {
        let w = FleetWorkload {
            chaos: ChaosSpec::soak(),
            ..FleetWorkload::default()
        };
        let derived = ShardPlan::derive(99, 7, &w);
        let recovered = ShardPlan::from_seed(derived.seed, 7, &w);
        assert_eq!(derived, recovered);
    }

    #[test]
    fn chaos_probabilities_zero_means_no_chaos() {
        let w = FleetWorkload::default();
        for index in 0..64 {
            let plan = ShardPlan::derive(5, index, &w);
            assert_eq!(plan.chaos, ChaosSchedule::default());
        }
    }

    #[test]
    fn soak_chaos_hits_some_shards() {
        let w = FleetWorkload {
            chaos: ChaosSpec::soak(),
            ..FleetWorkload::default()
        };
        let panics = (0..256)
            .filter(|&i| ShardPlan::derive(5, i, &w).chaos.panic_at.is_some())
            .count();
        assert!(panics > 0, "soak chaos should inject panics somewhere");
        assert!(panics < 128, "panic_p=0.04 should not hit half the fleet");
    }

    #[test]
    fn shard_ops_roundtrip_through_pack() {
        let ops = vec![
            ShardOp::Chaos(ChaosOp::Panic),
            ShardOp::Chaos(ChaosOp::VirtualStall(SimDuration::from_secs(700))),
            ShardOp::Chaos(ChaosOp::Spin),
            ShardOp::Sys(overhaul_core::Event::Settle),
            ShardOp::ExpectDeny(overhaul_core::Event::OpenDevice {
                pid: overhaul_sim::Pid::from_raw(9),
                path: "/dev/video0".into(),
            }),
            ShardOp::Expect(
                Expectation::Blocked,
                overhaul_core::Event::OpenDevice {
                    pid: overhaul_sim::Pid::from_raw(9),
                    path: "/dev/snd/mic0".into(),
                },
            ),
            ShardOp::Expect(
                Expectation::ExpectedBypass {
                    rationale: "grant-all baseline grants by design".into(),
                },
                overhaul_core::Event::Settle,
            ),
        ];
        let mut enc = Enc::new();
        ops.pack(&mut enc);
        let bytes = enc.into_bytes();
        let back = Vec::<ShardOp>::unpack(&mut Dec::new(&bytes)).expect("unpack");
        assert_eq!(back, ops);
    }

    #[test]
    fn campaign_p_zero_means_no_campaigns_and_one_means_all() {
        let none = FleetWorkload::default();
        let all = FleetWorkload {
            campaign_p: 1.0,
            ..FleetWorkload::default()
        };
        for index in 0..32 {
            assert_eq!(ShardPlan::derive(5, index, &none).campaign, None);
            let plan = ShardPlan::derive(5, index, &all);
            let slot = plan.campaign.expect("campaign_p=1.0 places a campaign");
            assert!(slot.at_step < none.steps);
            assert!(
                plan.virtual_deadline > ShardPlan::derive(5, index, &none).virtual_deadline,
                "campaign shards get extra deadline headroom"
            );
        }
        // The draw covers the whole catalog across the fleet.
        let kinds: std::collections::BTreeSet<_> = (0..64)
            .filter_map(|i| ShardPlan::derive(5, i, &all).campaign)
            .map(|s| format!("{:?}", s.kind))
            .collect();
        assert_eq!(kinds.len(), CampaignKind::ALL.len());
    }

    #[test]
    fn campaign_draw_does_not_shift_existing_streams() {
        // The campaign draws are appended after every legacy draw, so
        // plans with campaign_p=0 are identical to pre-campaign plans in
        // all legacy fields regardless of the new knobs.
        let old = FleetWorkload::default();
        let new = FleetWorkload {
            campaign_p: 1.0,
            ..FleetWorkload::default()
        };
        for index in 0..16 {
            let a = ShardPlan::derive(17, index, &old);
            let b = ShardPlan::derive(17, index, &new);
            assert_eq!(a.config, b.config);
            assert_eq!(a.chaos, b.chaos);
            assert_eq!(a.seed, b.seed);
        }
    }
}
