//! The fleet: a worker pool of supervised shards plus aggregation.
//!
//! [`run_fleet`] derives one decorrelated [`ShardPlan`] per shard index,
//! runs them on a named worker pool, supervises wall-clock progress
//! (cancelling shards whose heartbeat stalls), enforces a failure budget
//! (past it the fleet stops claiming new shards instead of aborting),
//! shrinks every failure triple, and merges per-shard Prometheus pages
//! into a single fleet registry with shard/failure counters on top.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use overhaul_apps::campaign::DefenseMatrix;
use overhaul_sim::{label_metric, LedgerSummary, MetricsRegistry, SketchBook};

use crate::archive::ShardArchive;
use crate::schedule::{FleetWorkload, ShardPlan};
use crate::shard::{quiet_injected_panics, run_shard, ShardBeat, ShardOutcome, ShardReport};
use crate::shrink::{shrink_triple, ShrinkReport};

/// Fleet-level knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Master seed every shard seed streams from.
    pub master_seed: u64,
    /// Number of shards to run.
    pub shards: usize,
    /// Worker threads (`0` = one per available core, capped at 16).
    pub workers: usize,
    /// Per-shard workload shape.
    pub workload: FleetWorkload,
    /// Failures tolerated before the fleet degrades (stops claiming new
    /// shards). Shards already running still finish and report.
    pub failure_budget: usize,
    /// Whether to shrink failure triples after the run.
    pub shrink: bool,
    /// Replay budget per shrink.
    pub shrink_replays: usize,
    /// Supervisor poll interval.
    pub stall_poll: Duration,
    /// Wall time without heartbeat progress before a shard is cancelled.
    pub stall_timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            master_seed: 0,
            shards: 256,
            workers: 0,
            workload: FleetWorkload::default(),
            failure_budget: 64,
            shrink: true,
            shrink_replays: 200,
            stall_poll: Duration::from_millis(20),
            stall_timeout: Duration::from_millis(400),
        }
    }
}

impl FleetConfig {
    fn worker_count(&self) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16);
        let chosen = if self.workers == 0 {
            auto
        } else {
            self.workers
        };
        chosen.clamp(1, self.shards.max(1))
    }
}

/// What a whole fleet run produced.
#[derive(Debug)]
pub struct FleetReport {
    /// Shards requested.
    pub shards: usize,
    /// Shards that completed cleanly (self-replay verified).
    pub ok: usize,
    /// Shards that failed (each carries a triple below).
    pub failed: usize,
    /// Shards never started because the failure budget ran out.
    pub skipped: usize,
    /// Whether the failure budget was exhausted.
    pub degraded: bool,
    /// Every failure, shrunk (or passed through when shrinking is off or
    /// inapplicable), sorted by shard index.
    pub failures: Vec<ShrinkReport>,
    /// Events applied across all shards.
    pub events_total: u64,
    /// Virtual milliseconds simulated across all shards.
    pub sim_ms_total: u64,
    /// Merged fleet metrics (per-shard registries + fleet counters).
    pub metrics: MetricsRegistry,
    /// Defense matrix aggregated over every completed campaign.
    pub matrix: DefenseMatrix,
    /// Shards whose scheduled campaign ran to completion.
    pub campaign_shards: usize,
    /// Per-shard sketch books merged in canonical (shard index) order.
    /// The deterministic plane of this book is byte-identical across two
    /// same-master-seed runs ([`SketchBook::canonical_bytes`]).
    pub sketches: SketchBook,
    /// Per-shard kernel-ledger digests, sorted by shard index — the
    /// cross-shard ledger aggregation/diff view.
    pub ledgers: Vec<(usize, LedgerSummary)>,
    /// One replayable archive per clean shard (log, last-good snapshot,
    /// and sketches), sorted by shard index; `fleet_soak --out` persists
    /// these for `ovq` exemplar forensics.
    pub archives: Vec<ShardArchive>,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

impl FleetReport {
    /// The fleet Prometheus page.
    pub fn render_metrics(&self) -> String {
        self.metrics.render()
    }

    /// Shards simulated per wall-clock second.
    pub fn shards_per_sec(&self) -> f64 {
        self.shards_attempted() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Virtual machine-hours simulated per wall-clock hour (the fleet's
    /// time-compression factor).
    pub fn machine_hours_per_wall_hour(&self) -> f64 {
        (self.sim_ms_total as f64 / 3_600_000.0) / (self.wall.as_secs_f64() / 3_600.0).max(1e-12)
    }

    fn shards_attempted(&self) -> usize {
        self.ok + self.failed
    }

    /// Renders the fleet's merged per-mechanism wall-latency percentile
    /// table (what `fleet_soak` prints).
    pub fn render_latency(&self) -> String {
        self.sketches.render_table()
    }

    /// How many distinct kernel-ledger chain heads the fleet produced.
    /// Shards run decorrelated seeds, so heads are normally all distinct;
    /// a *collision* here means two different shards recorded
    /// byte-identical histories.
    pub fn distinct_ledger_heads(&self) -> usize {
        let mut heads: Vec<u64> = self.ledgers.iter().map(|(_, l)| l.head).collect();
        heads.sort_unstable();
        heads.dedup();
        heads.len()
    }

    /// The ledger-diff view between two shard indices: every localized
    /// divergence line, or an empty vec when the digests agree (or either
    /// shard is unknown).
    pub fn ledger_diff(&self, a: usize, b: usize) -> Vec<String> {
        let find = |idx: usize| self.ledgers.iter().find(|(i, _)| *i == idx).map(|(_, l)| l);
        match (find(a), find(b)) {
            (Some(la), Some(lb)) => la.diff(lb),
            _ => Vec::new(),
        }
    }
}

/// Runs the whole fleet and aggregates. See [`FleetConfig`] for knobs.
pub fn run_fleet(config: &FleetConfig) -> FleetReport {
    quiet_injected_panics();
    let start = Instant::now();

    let plans: Vec<ShardPlan> = (0..config.shards)
        .map(|i| ShardPlan::derive(config.master_seed, i, &config.workload))
        .collect();
    let beats: Vec<Arc<ShardBeat>> = (0..config.shards)
        .map(|_| Arc::new(ShardBeat::new()))
        .collect();

    let next = AtomicUsize::new(0);
    let failures_seen = AtomicUsize::new(0);
    let workers_live = AtomicUsize::new(config.worker_count());
    let degraded = AtomicBool::new(false);
    let reports: Mutex<Vec<ShardReport>> = Mutex::new(Vec::with_capacity(config.shards));

    std::thread::scope(|s| {
        for w in 0..config.worker_count() {
            let plans = &plans;
            let beats = &beats;
            let next = &next;
            let failures_seen = &failures_seen;
            let workers_live = &workers_live;
            let degraded = &degraded;
            let reports = &reports;
            std::thread::Builder::new()
                // The "overhaul-shard-" prefix opts these threads into the
                // quiet panic hook: contained shard panics do not spew.
                .name(format!("overhaul-shard-worker-{w}"))
                .spawn_scoped(s, move || {
                    loop {
                        if failures_seen.load(Ordering::Relaxed) >= config.failure_budget {
                            degraded.store(true, Ordering::Relaxed);
                            break;
                        }
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= plans.len() {
                            break;
                        }
                        let report = run_shard(&plans[idx], &beats[idx]);
                        if !report.outcome.is_ok() {
                            failures_seen.fetch_add(1, Ordering::Relaxed);
                        }
                        reports.lock().unwrap().push(report);
                    }
                    workers_live.fetch_sub(1, Ordering::Relaxed);
                })
                .expect("spawn fleet worker");
        }

        // The calling thread is the wall-clock supervisor: any active
        // shard whose heartbeat does not move for `stall_timeout` gets a
        // cancel (the spin chaos op, or a genuinely wedged shard).
        let mut last_seen: Vec<(u64, Instant)> = beats
            .iter()
            .map(|b| (b.progress(), Instant::now()))
            .collect();
        while workers_live.load(Ordering::Relaxed) > 0 {
            std::thread::sleep(config.stall_poll);
            let now = Instant::now();
            for (i, beat) in beats.iter().enumerate() {
                if !beat.is_active() {
                    last_seen[i] = (beat.progress(), now);
                    continue;
                }
                let progress = beat.progress();
                if progress != last_seen[i].0 {
                    last_seen[i] = (progress, now);
                } else if now.duration_since(last_seen[i].1) >= config.stall_timeout {
                    beat.request_cancel();
                }
            }
        }
    });

    let mut reports = reports.into_inner().unwrap();
    reports.sort_by_key(|r| r.index);

    let mut metrics = MetricsRegistry::new();
    let mut failures = Vec::new();
    let mut ok = 0usize;
    let mut events_total = 0u64;
    let mut sim_ms_total = 0u64;
    let mut matrix = DefenseMatrix::new();
    let mut campaign_shards = 0usize;
    // Reports are index-sorted above, so the sketch merge order is
    // canonical: two same-master-seed runs merge the same books in the
    // same order and produce byte-identical deterministic planes (the
    // merge is order-independent anyway; sorting makes it auditable).
    let mut sketches = SketchBook::new();
    let mut ledgers: Vec<(usize, LedgerSummary)> = Vec::with_capacity(reports.len());
    let mut archives: Vec<ShardArchive> = Vec::new();
    let attempted = reports.len();
    for report in reports {
        metrics.merge(&report.metrics);
        sketches.merge(&report.sketches);
        ledgers.push((report.index, report.ledger.clone()));
        events_total += report.events as u64;
        sim_ms_total += report.sim_ms;
        if let Some(campaign) = &report.campaign {
            matrix.absorb(campaign);
            campaign_shards += 1;
        }
        match report.outcome {
            ShardOutcome::Ok { .. } => {
                ok += 1;
                if let (Some(log), Some(snapshot)) = (report.log, report.snapshot) {
                    archives.push(ShardArchive {
                        index: report.index,
                        seed: report.seed,
                        sketches: report.sketches,
                        ledger: report.ledger,
                        log,
                        snap_idx: report.snap_idx,
                        snapshot,
                    });
                }
            }
            ShardOutcome::Failed(triple) => {
                let shrunk = if config.shrink {
                    shrink_triple(&triple, config.shrink_replays)
                } else {
                    ShrinkReport::unshrunk(*triple)
                };
                failures.push(shrunk);
            }
        }
    }
    let failed = failures.len();
    let skipped = config.shards - attempted;
    let degraded = degraded.into_inner() || skipped > 0;

    metrics.set_counter("overhaul_fleet_shards_total", config.shards as u64);
    metrics.set_counter("overhaul_fleet_shards_ok_total", ok as u64);
    metrics.set_counter("overhaul_fleet_shards_failed_total", failed as u64);
    metrics.set_counter("overhaul_fleet_shards_skipped_total", skipped as u64);
    metrics.set_counter("overhaul_fleet_events_total", events_total);
    metrics.set_counter("overhaul_fleet_sim_ms_total", sim_ms_total);
    metrics.set_counter(
        "overhaul_fleet_campaign_shards_total",
        campaign_shards as u64,
    );
    metrics.set_counter(
        "overhaul_fleet_campaign_regressions_total",
        matrix.regressions() as u64,
    );
    metrics.set_gauge("overhaul_fleet_degraded", i64::from(degraded));
    for shrunk in &failures {
        metrics.add_counter(
            &label_metric(
                "overhaul_fleet_failures_total",
                "kind",
                shrunk.triple.kind.label(),
            ),
            1,
        );
    }

    // The observability plane on the merged Prometheus page: wall-latency
    // quantiles and sample counts per mechanism, plus the cross-shard
    // ledger view (per-shard chain heads, entry counts, effect classes).
    for mech in sketches.recorded() {
        let sketch = sketches.wall_merged(&[mech]);
        for (label, q) in overhaul_sim::FLEET_QUANTILES {
            metrics.set_gauge(
                &format!(
                    "overhaul_fleet_latency_ns{{mech=\"{}\",q=\"{label}\"}}",
                    mech.label()
                ),
                sketch.quantile(q) as i64,
            );
        }
        metrics.set_counter(
            &label_metric("overhaul_fleet_latency_samples_total", "mech", mech.label()),
            sketch.count(),
        );
    }
    let mut ledger_entries = 0u64;
    for (index, summary) in &ledgers {
        ledger_entries += summary.entries;
        metrics.set_gauge(
            &label_metric("overhaul_fleet_ledger_head", "shard", &index.to_string()),
            // Chain heads are opaque 64-bit seals; the page carries the
            // low 63 bits (gauges are signed).
            (summary.head & (i64::MAX as u64)) as i64,
        );
        for (class, count) in &summary.effects {
            metrics.add_counter(
                &label_metric(
                    "overhaul_fleet_ledger_effects_total",
                    "class",
                    overhaul_sim::Effect::class_label(*class),
                ),
                *count,
            );
        }
    }
    metrics.set_counter("overhaul_fleet_ledger_entries_total", ledger_entries);
    let distinct = {
        let mut heads: Vec<u64> = ledgers.iter().map(|(_, l)| l.head).collect();
        heads.sort_unstable();
        heads.dedup();
        heads.len()
    };
    metrics.set_gauge("overhaul_fleet_ledger_heads_distinct", distinct as i64);

    FleetReport {
        shards: config.shards,
        ok,
        failed,
        skipped,
        degraded,
        failures,
        events_total,
        sim_ms_total,
        metrics,
        matrix,
        campaign_shards,
        sketches,
        ledgers,
        archives,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::replay_triple;
    use crate::schedule::ChaosSpec;

    #[test]
    fn small_clean_fleet_all_ok() {
        let config = FleetConfig {
            master_seed: 7,
            shards: 8,
            workload: FleetWorkload {
                steps: 40,
                ..FleetWorkload::default()
            },
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        assert_eq!(report.ok, 8, "failures: {:?}", report.failures);
        assert_eq!(report.failed, 0);
        assert_eq!(report.skipped, 0);
        assert!(!report.degraded);
        assert_eq!(report.metrics.counter("overhaul_fleet_shards_ok_total"), 8);
        assert!(report.events_total > 0);
        // Merged per-shard kernel counters survive into the fleet page.
        assert!(
            report
                .metrics
                .counter("overhaul_monitor_notifications_total")
                > 0
        );
        assert!(report
            .render_metrics()
            .contains("overhaul_fleet_shards_total 8"));
    }

    #[test]
    fn chaotic_fleet_contains_failures_and_every_triple_replays() {
        let config = FleetConfig {
            master_seed: 42,
            shards: 24,
            workload: FleetWorkload {
                steps: 50,
                chaos: ChaosSpec {
                    panic_p: 0.3,
                    stall_p: 0.2,
                    spin_p: 0.0,
                    fault_intensity: 0.5,
                },
                ..FleetWorkload::default()
            },
            shrink_replays: 40,
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        assert!(report.failed > 0, "chaos fleet produced no failures");
        assert_eq!(report.ok + report.failed + report.skipped, report.shards);
        for shrunk in &report.failures {
            let repro = replay_triple(&shrunk.triple);
            assert!(
                repro.is_reproduced(),
                "shard {} triple did not reproduce: {repro:?}",
                shrunk.triple.index
            );
        }
    }

    #[test]
    fn campaign_fleet_aggregates_a_defense_matrix() {
        let config = FleetConfig {
            master_seed: 77,
            shards: 12,
            workload: FleetWorkload {
                steps: 40,
                campaign_p: 1.0,
                ..FleetWorkload::default()
            },
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        assert_eq!(report.failed, 0, "failures: {:?}", report.failures);
        assert!(
            report.campaign_shards >= 10,
            "campaign_p=1.0 should complete campaigns on almost every shard"
        );
        assert_eq!(report.matrix.regressions(), 0);
        assert!(report.matrix.bypasses() > 0, "{}", report.matrix.render());
        assert_eq!(
            report
                .metrics
                .counter("overhaul_fleet_campaign_shards_total"),
            report.campaign_shards as u64
        );
    }

    #[test]
    fn failure_budget_degrades_gracefully() {
        let config = FleetConfig {
            master_seed: 9,
            shards: 16,
            workers: 2,
            failure_budget: 2,
            shrink: false,
            workload: FleetWorkload {
                steps: 30,
                chaos: ChaosSpec {
                    panic_p: 1.0, // every shard panics
                    stall_p: 0.0,
                    spin_p: 0.0,
                    fault_intensity: 0.0,
                },
                ..FleetWorkload::default()
            },
            ..FleetConfig::default()
        };
        let report = run_fleet(&config);
        assert!(report.degraded, "budget of 2 with all-panic shards");
        assert!(report.skipped > 0, "degraded fleet must skip shards");
        assert!(report.failed >= 2);
        assert_eq!(report.metrics.gauge("overhaul_fleet_degraded"), 1);
        assert_eq!(report.ok + report.failed + report.skipped, report.shards);
    }
}
