//! Bisectable failure triples.
//!
//! When a shard fails — panic, hang, policy violation, replay divergence,
//! boot refusal — the harness persists a [`FailureTriple`]: the shard
//! seed, the *sealed* [`EventLog`] prefix up to the failure point, and the
//! last-good [`Snapshot`]. The log's `final_state_hash` is the machine's
//! state hash immediately before the failing op, so reproduction is a
//! byte-identical check, not a heuristic one: replay the log (from boot,
//! or from the snapshot for the short way), compare hashes, then re-apply
//! the failing op and confirm the same failure kind recurs.

use std::panic::{self, AssertUnwindSafe};

use overhaul_core::{apply_event, replay, replay_from, EventLog, System};
use overhaul_sim::{Dec, Enc, Pack, Snapshot, SnapshotError, Timestamp};

use crate::schedule::{ChaosOp, ShardOp};

/// What kind of failure a shard produced.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureKind {
    /// A panic inside the shard, contained by `catch_unwind`.
    Panic {
        /// The panic payload, stringified.
        message: String,
    },
    /// Virtual time crossed the shard's progress deadline.
    HungVirtual {
        /// Virtual time when the watchdog fired.
        now: Timestamp,
        /// The deadline it crossed.
        deadline: Timestamp,
    },
    /// The wall-clock supervisor cancelled the shard for not making real
    /// progress.
    HungWall,
    /// The policy oracle expected a denial and the kernel granted.
    PolicyViolation {
        /// The device path the spy was wrongly granted.
        path: String,
    },
    /// The shard's self-replay produced a different state hash than the
    /// live run.
    Divergence {
        /// Hash recorded by the live run.
        expected: u64,
        /// Hash the replay produced.
        got: u64,
    },
    /// The machine refused to boot with the shard's configuration.
    Boot {
        /// The boot error, stringified.
        message: String,
    },
    /// The shard's ledger failed [`System::verify_ledgers`] after the
    /// run: the hash chain over its recorded history is broken.
    CorruptLedger {
        /// The chain-verification error, stringified.
        message: String,
    },
    /// A campaign stage (or oracle probe) violated its expectation: a
    /// stage expected `Blocked` was granted, or a documented
    /// `ExpectedBypass` started being blocked (an accidental semantics
    /// change in the other direction).
    DefenseRegression {
        /// Which campaign (or "fleet-oracle" for generated probes).
        campaign: String,
        /// The stage label (or probed path).
        stage: String,
        /// The judge's explanation.
        detail: String,
    },
}

impl FailureKind {
    /// Stable label used as the `kind` value in fleet metrics.
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::Panic { .. } => "panic",
            FailureKind::HungVirtual { .. } => "hung_virtual",
            FailureKind::HungWall => "hung_wall",
            FailureKind::PolicyViolation { .. } => "policy_violation",
            FailureKind::Divergence { .. } => "divergence",
            FailureKind::Boot { .. } => "boot",
            FailureKind::CorruptLedger { .. } => "corrupt_ledger",
            FailureKind::DefenseRegression { .. } => "defense_regression",
        }
    }
}

impl Pack for FailureKind {
    fn pack(&self, enc: &mut Enc) {
        match self {
            FailureKind::Panic { message } => {
                enc.put_u8(0);
                message.pack(enc);
            }
            FailureKind::HungVirtual { now, deadline } => {
                enc.put_u8(1);
                now.pack(enc);
                deadline.pack(enc);
            }
            FailureKind::HungWall => enc.put_u8(2),
            FailureKind::PolicyViolation { path } => {
                enc.put_u8(3);
                path.pack(enc);
            }
            FailureKind::Divergence { expected, got } => {
                enc.put_u8(4);
                expected.pack(enc);
                got.pack(enc);
            }
            FailureKind::Boot { message } => {
                enc.put_u8(5);
                message.pack(enc);
            }
            FailureKind::CorruptLedger { message } => {
                enc.put_u8(6);
                message.pack(enc);
            }
            FailureKind::DefenseRegression {
                campaign,
                stage,
                detail,
            } => {
                enc.put_u8(7);
                campaign.pack(enc);
                stage.pack(enc);
                detail.pack(enc);
            }
        }
    }
    fn unpack(dec: &mut Dec<'_>) -> Result<Self, SnapshotError> {
        Ok(match dec.take_u8()? {
            0 => FailureKind::Panic {
                message: Pack::unpack(dec)?,
            },
            1 => FailureKind::HungVirtual {
                now: Pack::unpack(dec)?,
                deadline: Pack::unpack(dec)?,
            },
            2 => FailureKind::HungWall,
            3 => FailureKind::PolicyViolation {
                path: Pack::unpack(dec)?,
            },
            4 => FailureKind::Divergence {
                expected: Pack::unpack(dec)?,
                got: Pack::unpack(dec)?,
            },
            5 => FailureKind::Boot {
                message: Pack::unpack(dec)?,
            },
            6 => FailureKind::CorruptLedger {
                message: Pack::unpack(dec)?,
            },
            7 => FailureKind::DefenseRegression {
                campaign: Pack::unpack(dec)?,
                stage: Pack::unpack(dec)?,
                detail: Pack::unpack(dec)?,
            },
            _ => return Err(SnapshotError::BadValue("failure kind tag")),
        })
    }
}

/// The bisectable reproducer for one shard failure.
///
/// `log.final_state_hash` is sealed to the machine's state hash
/// immediately *before* `failing_op` — the point both replay paths must
/// reach byte-identically. `snapshot` is the most recent periodic
/// checkpoint, taken after `snap_idx` events, so
/// `replay_from(&snapshot, log.suffix(snap_idx), ..)` is the short
/// bisection path and `replay(&log)` the from-boot path.
#[derive(Debug, Clone)]
pub struct FailureTriple {
    /// Shard index within the fleet (diagnostic only).
    pub index: usize,
    /// The shard's decorrelated seed.
    pub seed: u64,
    /// What failed.
    pub kind: FailureKind,
    /// Recorded inputs up to the failure point, hash-sealed.
    pub log: EventLog,
    /// Events already covered by `snapshot`.
    pub snap_idx: usize,
    /// Last-good checkpoint (after `snap_idx` events).
    pub snapshot: Snapshot,
    /// The op whose application failed, if the failure is op-shaped
    /// (panics, hangs, violations). `None` for divergence and boot
    /// failures, which have no single culprit op.
    pub failing_op: Option<ShardOp>,
    /// The shard's virtual progress deadline (needed to re-judge hangs).
    pub virtual_deadline: Timestamp,
    /// The machine's sealed [`System::ledger_head`] at the failure point
    /// (0 when the machine never booted), so a reproducer can confirm the
    /// replayed history, not just the replayed state, is identical.
    pub chain_head: u64,
}

impl FailureTriple {
    /// Serializes the triple (same versioned container as snapshots).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.index.pack(&mut enc);
        self.seed.pack(&mut enc);
        self.kind.pack(&mut enc);
        self.log.to_bytes().pack(&mut enc);
        self.snap_idx.pack(&mut enc);
        self.snapshot.to_bytes().pack(&mut enc);
        self.failing_op.pack(&mut enc);
        self.virtual_deadline.pack(&mut enc);
        self.chain_head.pack(&mut enc);
        Snapshot::new(enc.into_bytes(), Vec::new()).to_bytes()
    }

    /// Parses a triple serialized by [`FailureTriple::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from a truncated or corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<FailureTriple, SnapshotError> {
        let container = Snapshot::from_bytes(bytes)?;
        let mut dec = Dec::new(container.state());
        let index = Pack::unpack(&mut dec)?;
        let seed = Pack::unpack(&mut dec)?;
        let kind = Pack::unpack(&mut dec)?;
        let log_bytes: Vec<u8> = Pack::unpack(&mut dec)?;
        let snap_idx = Pack::unpack(&mut dec)?;
        let snap_bytes: Vec<u8> = Pack::unpack(&mut dec)?;
        let failing_op = Pack::unpack(&mut dec)?;
        let virtual_deadline = Pack::unpack(&mut dec)?;
        let chain_head = Pack::unpack(&mut dec)?;
        dec.finish()?;
        Ok(FailureTriple {
            index,
            seed,
            kind,
            log: EventLog::from_bytes(&log_bytes)?,
            snap_idx,
            snapshot: Snapshot::from_bytes(&snap_bytes)?,
            failing_op,
            virtual_deadline,
            chain_head,
        })
    }

    /// The sealed pre-failure state hash.
    pub fn sealed_hash(&self) -> Option<u64> {
        self.log.final_state_hash
    }
}

/// The outcome of replaying a [`FailureTriple`].
#[derive(Debug, Clone, PartialEq)]
pub enum Reproduction {
    /// The replay reached the sealed pre-failure hash byte-identically
    /// and re-applying the failing op produced the same failure kind.
    Reproduced {
        /// The pre-failure state hash both runs agreed on.
        state_hash: u64,
    },
    /// The replay reached the failure point with a different state hash —
    /// the log no longer explains the failure.
    HashMismatch {
        /// The sealed hash.
        expected: u64,
        /// What the replay produced.
        got: u64,
    },
    /// The replay reached the right state but re-applying the failing op
    /// did not fail the same way.
    KindMismatch {
        /// Human-readable explanation.
        detail: String,
    },
    /// The triple itself is unusable (unsealed log, corrupt snapshot,
    /// unexpected boot refusal).
    Broken {
        /// Human-readable explanation.
        detail: String,
    },
}

impl Reproduction {
    /// Whether the failure reproduced exactly.
    pub fn is_reproduced(&self) -> bool {
        matches!(self, Reproduction::Reproduced { .. })
    }
}

/// Replays a triple from boot: fresh machine, whole log, then the failing
/// op. See [`Reproduction`] for the possible verdicts.
pub fn replay_triple(triple: &FailureTriple) -> Reproduction {
    // Boot failures short-circuit: reproduction is the boot refusing again.
    if let FailureKind::Boot { .. } = triple.kind {
        return match System::try_new(triple.log.config.clone()) {
            Err(_) => Reproduction::Reproduced { state_hash: 0 },
            Ok(_) => Reproduction::KindMismatch {
                detail: "recorded boot failure, but the machine boots".into(),
            },
        };
    }
    let system = match replay(&triple.log) {
        Ok(system) => system,
        Err(e) => {
            return Reproduction::Broken {
                detail: format!("replay boot failed: {e:?}"),
            }
        }
    };
    finish_reproduction(triple, system)
}

/// Replays a triple the short way: restore the last-good snapshot, apply
/// the log suffix past it, then the failing op. Must agree byte-for-byte
/// with [`replay_triple`].
pub fn replay_triple_from_snapshot(triple: &FailureTriple) -> Reproduction {
    if let FailureKind::Boot { .. } = triple.kind {
        return replay_triple(triple);
    }
    if triple.snap_idx > triple.log.events.len() {
        return Reproduction::Broken {
            detail: "snapshot index past end of log".into(),
        };
    }
    let suffix = triple.log.suffix(triple.snap_idx);
    let system = match replay_from(&triple.snapshot, suffix, triple.log.final_state_hash) {
        Ok(system) => system,
        Err(e) => {
            return Reproduction::Broken {
                detail: format!("snapshot restore failed: {e:?}"),
            }
        }
    };
    finish_reproduction(triple, system)
}

/// Common tail of both replay paths: verify the sealed hash, then
/// re-apply the failing op and check the failure kind recurs.
fn finish_reproduction(triple: &FailureTriple, mut system: System) -> Reproduction {
    let expected = match triple.log.final_state_hash {
        Some(h) => h,
        None => {
            return Reproduction::Broken {
                detail: "triple log is not hash-sealed".into(),
            }
        }
    };
    let got = system.state_hash();

    // Divergence triples invert the check: the *live* hash is sealed, and
    // the defect is precisely that replay lands elsewhere. Reproduction
    // means replay deterministically lands on the same wrong hash.
    if let FailureKind::Divergence {
        expected: live,
        got: diverged,
    } = triple.kind
    {
        return if got == diverged {
            Reproduction::Reproduced { state_hash: got }
        } else if got == live {
            Reproduction::KindMismatch {
                detail: "recorded divergence, but replay now matches the live run".into(),
            }
        } else {
            Reproduction::HashMismatch {
                expected: diverged,
                got,
            }
        };
    }

    if got != expected {
        return Reproduction::HashMismatch { expected, got };
    }

    match &triple.kind {
        FailureKind::Panic { message } => {
            let op = triple.failing_op.clone();
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| match &op {
                Some(ShardOp::Chaos(ChaosOp::Panic)) => crate::shard::injected_panic(triple.index),
                Some(ShardOp::Sys(e))
                | Some(ShardOp::ExpectDeny(e))
                | Some(ShardOp::Expect(_, e)) => {
                    apply_event(&mut system, e);
                }
                _ => {}
            }));
            match outcome {
                Err(payload) => {
                    let msg = panic_message(&payload);
                    if &msg == message {
                        Reproduction::Reproduced {
                            state_hash: expected,
                        }
                    } else {
                        Reproduction::KindMismatch {
                            detail: format!(
                                "panic reproduced with different message: {msg:?} vs {message:?}"
                            ),
                        }
                    }
                }
                Ok(()) => Reproduction::KindMismatch {
                    detail: "recorded panic, but the op completed".into(),
                },
            }
        }
        FailureKind::HungVirtual { .. } => {
            if let Some(ShardOp::Chaos(ChaosOp::VirtualStall(jump))) = &triple.failing_op {
                system.advance(*jump);
            }
            if system.now() > triple.virtual_deadline {
                Reproduction::Reproduced {
                    state_hash: expected,
                }
            } else {
                Reproduction::KindMismatch {
                    detail: format!(
                        "recorded virtual hang, but replay sits at {} (deadline {})",
                        system.now(),
                        triple.virtual_deadline
                    ),
                }
            }
        }
        // A wall hang cannot be re-executed without hanging the
        // reproducer; reaching the sealed hash is the reproduction. The
        // failing op is either the spin that ate the clock or absent
        // (the supervisor cancelled the shard between ops).
        FailureKind::HungWall => match &triple.failing_op {
            Some(ShardOp::Chaos(ChaosOp::Spin)) | None => Reproduction::Reproduced {
                state_hash: expected,
            },
            other => Reproduction::KindMismatch {
                detail: format!("wall hang with a non-spin op on file: {other:?}"),
            },
        },
        FailureKind::PolicyViolation { path } => {
            let op = match &triple.failing_op {
                Some(ShardOp::ExpectDeny(e)) => e.clone(),
                other => {
                    return Reproduction::KindMismatch {
                        detail: format!("policy violation without an ExpectDeny op: {other:?}"),
                    }
                }
            };
            match apply_event(&mut system, &op).fd() {
                Ok(_) => Reproduction::Reproduced {
                    state_hash: expected,
                },
                Err(e) => Reproduction::KindMismatch {
                    detail: format!("recorded wrongful grant on {path}, replay denies ({e:?})"),
                },
            }
        }
        // A broken chain cannot be re-executed: replay rebuilds a fresh,
        // valid history, so reaching the sealed hash is the reproduction
        // (same rationale as wall hangs).
        FailureKind::CorruptLedger { .. } => Reproduction::Reproduced {
            state_hash: expected,
        },
        FailureKind::DefenseRegression { stage, .. } => {
            let (expect, op) = match &triple.failing_op {
                Some(ShardOp::Expect(expect, e)) => (expect.clone(), e.clone()),
                other => {
                    return Reproduction::KindMismatch {
                        detail: format!("defense regression without an Expect op: {other:?}"),
                    }
                }
            };
            let outcome = apply_event(&mut system, &op);
            let granted = match overhaul_apps::campaign::outcome_granted(&op, &outcome) {
                Some(g) => g,
                None => {
                    return Reproduction::KindMismatch {
                        detail: format!(
                            "stage {stage}: replayed op no longer grant/deny-shaped: {outcome:?}"
                        ),
                    }
                }
            };
            // Reproduction replays the same deterministic fault plan, so
            // the live mismatch must recur; judged strictly, because any
            // verdict that was fault-excused live never became a triple.
            if overhaul_apps::campaign::judge(&expect, granted, false).is_regression() {
                Reproduction::Reproduced {
                    state_hash: expected,
                }
            } else {
                Reproduction::KindMismatch {
                    detail: format!(
                        "stage {stage}: recorded a defense regression, but the replayed \
                         outcome (granted={granted}) matches expectation {}",
                        expect.label()
                    ),
                }
            }
        }
        FailureKind::Divergence { .. } | FailureKind::Boot { .. } => unreachable!("handled above"),
    }
}

/// Stringifies a panic payload the way the shard runner does, so recorded
/// and reproduced messages compare equal.
pub(crate) fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overhaul_core::{Event, OverhaulConfig, Recorder};
    use overhaul_sim::SimDuration;

    fn sealed_triple(kind: FailureKind, failing_op: Option<ShardOp>) -> FailureTriple {
        let mut rec = Recorder::new(OverhaulConfig::protected());
        rec.apply(Event::LaunchGuiApp {
            exe: "/usr/bin/editor".into(),
            rect: overhaul_xserver::geometry::Rect::new(0, 0, 400, 300),
        });
        rec.apply(Event::Settle);
        let snap_idx = rec.events_recorded();
        let snapshot = rec.snapshot();
        rec.apply(Event::Advance(SimDuration::from_secs(3)));
        let (system, log) = rec.finish();
        FailureTriple {
            index: 0,
            seed: 42,
            kind,
            log,
            snap_idx,
            snapshot,
            failing_op,
            virtual_deadline: Timestamp::from_millis(600_000),
            chain_head: system.ledger_head(),
        }
    }

    #[test]
    fn triple_round_trips_through_bytes() {
        let triple = sealed_triple(
            FailureKind::Panic {
                message: "boom".into(),
            },
            Some(ShardOp::Chaos(ChaosOp::Panic)),
        );
        let decoded = FailureTriple::from_bytes(&triple.to_bytes()).expect("decode");
        assert_eq!(decoded.seed, triple.seed);
        assert_eq!(decoded.kind, triple.kind);
        assert_eq!(decoded.snap_idx, triple.snap_idx);
        assert_eq!(decoded.failing_op, triple.failing_op);
        assert_eq!(decoded.log.events, triple.log.events);
        assert_eq!(decoded.log.final_state_hash, triple.log.final_state_hash);
        assert_eq!(decoded.log.final_ledger_head, triple.log.final_ledger_head);
        assert_eq!(decoded.chain_head, triple.chain_head);
        assert_ne!(triple.chain_head, 0, "a booted shard seals a real head");
        assert_eq!(
            decoded.snapshot.to_bytes(),
            triple.snapshot.to_bytes(),
            "snapshot must survive byte-identically"
        );
    }

    #[test]
    fn corrupt_triple_bytes_error_cleanly() {
        let triple = sealed_triple(FailureKind::HungWall, Some(ShardOp::Chaos(ChaosOp::Spin)));
        let bytes = triple.to_bytes();
        assert!(FailureTriple::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut garbled = bytes.clone();
        let mid = garbled.len() / 2;
        garbled[mid] ^= 0xFF;
        // Either parse error or a parse that differs — never a panic.
        let _ = FailureTriple::from_bytes(&garbled);
    }

    #[test]
    fn hung_virtual_triple_reproduces_from_boot_and_snapshot() {
        let jump = SimDuration::from_secs(100_000);
        let mut triple = sealed_triple(
            FailureKind::HungVirtual {
                now: Timestamp::from_millis(100_000_000),
                deadline: Timestamp::from_millis(600_000),
            },
            Some(ShardOp::Chaos(ChaosOp::VirtualStall(jump))),
        );
        triple.virtual_deadline = Timestamp::from_millis(600_000);
        let from_boot = replay_triple(&triple);
        assert!(from_boot.is_reproduced(), "from boot: {from_boot:?}");
        let from_snap = replay_triple_from_snapshot(&triple);
        assert_eq!(from_boot, from_snap, "both replay paths must agree");
    }

    #[test]
    fn tampered_log_yields_hash_mismatch_not_false_reproduction() {
        let mut triple = sealed_triple(FailureKind::HungWall, Some(ShardOp::Chaos(ChaosOp::Spin)));
        triple
            .log
            .events
            .push(Event::Advance(SimDuration::from_secs(1)));
        match replay_triple(&triple) {
            Reproduction::HashMismatch { .. } => {}
            other => panic!("expected HashMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_ledger_triple_round_trips_and_reproduces() {
        let triple = sealed_triple(
            FailureKind::CorruptLedger {
                message: "chain hash mismatch at seq 7".into(),
            },
            None,
        );
        let decoded = FailureTriple::from_bytes(&triple.to_bytes()).expect("decode");
        assert_eq!(decoded.kind, triple.kind);
        assert_eq!(decoded.kind.label(), "corrupt_ledger");
        let from_boot = replay_triple(&triple);
        assert!(from_boot.is_reproduced(), "from boot: {from_boot:?}");
        assert_eq!(from_boot, replay_triple_from_snapshot(&triple));
    }

    #[test]
    fn defense_regression_triple_reproduces_three_ways() {
        use overhaul_apps::campaign::Expectation;
        // A grant-all machine grants the probe a strict oracle expects
        // blocked — the canonical forced regression.
        let mut rec = Recorder::new(OverhaulConfig::grant_all());
        let gui = rec
            .apply(Event::LaunchGuiApp {
                exe: "/usr/bin/editor".into(),
                rect: overhaul_xserver::geometry::Rect::new(0, 0, 400, 300),
            })
            .gui()
            .expect("launch");
        rec.apply(Event::Settle);
        let snap_idx = rec.events_recorded();
        let snapshot = rec.snapshot();
        rec.apply(Event::Advance(SimDuration::from_secs(3)));
        let (system, log) = rec.finish();
        let triple = FailureTriple {
            index: 0,
            seed: 42,
            kind: FailureKind::DefenseRegression {
                campaign: "fleet-oracle".into(),
                stage: "/dev/snd/mic0".into(),
                detail: "expected blocked but the operation was granted".into(),
            },
            log,
            snap_idx,
            snapshot,
            failing_op: Some(ShardOp::Expect(
                Expectation::Blocked,
                Event::OpenDevice {
                    pid: gui.pid,
                    path: "/dev/snd/mic0".into(),
                },
            )),
            virtual_deadline: Timestamp::from_millis(600_000),
            chain_head: system.ledger_head(),
        };
        let from_boot = replay_triple(&triple);
        assert!(from_boot.is_reproduced(), "from boot: {from_boot:?}");
        let from_snap = replay_triple_from_snapshot(&triple);
        assert_eq!(from_boot, from_snap, "both replay paths must agree");
        let decoded = FailureTriple::from_bytes(&triple.to_bytes()).expect("decode");
        assert_eq!(decoded.kind, triple.kind);
        assert_eq!(decoded.kind.label(), "defense_regression");
        assert!(replay_triple(&decoded).is_reproduced(), "from bytes");
    }

    #[test]
    fn unsealed_log_is_reported_broken() {
        let mut triple = sealed_triple(FailureKind::HungWall, Some(ShardOp::Chaos(ChaosOp::Spin)));
        triple.log.final_state_hash = None;
        assert!(matches!(
            replay_triple(&triple),
            Reproduction::Broken { .. }
        ));
    }
}
