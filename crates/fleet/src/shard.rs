//! One supervised shard: boot, randomized workload, containment.
//!
//! [`run_shard`] boots a machine from a [`ShardPlan`], generates a
//! seed-determined randomized workload against the *live* system (so ops
//! can target handles — pids, windows, clients — that only exist at run
//! time), and records every applied input into an [`EventLog`]. Every op
//! runs under `catch_unwind`; panics, hangs, policy violations, and
//! self-replay divergences all become sealed [`FailureTriple`]s instead
//! of tearing the fleet. The generator is *not* needed for reproduction:
//! the recorded log is pure data.

use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;
use std::time::{Duration, Instant};

use overhaul_apps::campaign::{
    self, CampaignDriver, CampaignKind, CampaignReport, Expectation, StageReport, StageVerdict,
};
use overhaul_core::{apply_event, replay, ApplyOutcome, Event, EventLog, Gui, System};
use overhaul_kernel::monitor::ResourceOp;
use overhaul_kernel::policy::{IngestEvent, OpRequest};
use overhaul_sim::{
    AuditCategory, LedgerSummary, MetricsRegistry, Pid, SimDuration, SimRng, SketchBook, Snapshot,
};
use overhaul_xserver::geometry::Rect;

use crate::failure::{panic_message, FailureKind, FailureTriple};
use crate::schedule::{ChaosOp, ShardOp, ShardPlan};

/// Events between periodic last-good checkpoints.
const SNAP_EVERY: usize = 25;

/// Wall-clock backstop for [`ChaosOp::Spin`]: even if no supervisor ever
/// cancels the shard (unit tests), the spin self-terminates.
const SPIN_BACKSTOP: Duration = Duration::from_millis(1_500);

/// Device nodes the workload opens (the protected set of the default
/// configuration).
const DEVICES: [&str; 2] = ["/dev/snd/mic0", "/dev/video0"];

/// The deterministic payload of an injected chaos panic. Pulled into a
/// function so the recorded message and the reproduction's re-panic are
/// the same string by construction.
pub(crate) fn injected_panic(index: usize) -> ! {
    panic!("injected chaos panic (shard {index})")
}

/// Installs a process-wide panic hook that silences panics on threads
/// named `overhaul-shard-*` (they are contained by design and reported
/// as failure triples) and re-raised `injected chaos panic` payloads on
/// any thread (reproduction replays re-apply the failing op under
/// `catch_unwind` wherever the triple is being verified); panics on
/// every other thread keep the previous hook's behavior. Idempotent.
pub fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let contained = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("overhaul-shard-"));
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .is_some_and(|m| m.starts_with("injected chaos panic"));
            if !contained && !injected {
                prev(info);
            }
        }));
    });
}

/// Shared heartbeat between a running shard and the fleet supervisor.
#[derive(Debug, Default)]
pub struct ShardBeat {
    progress: AtomicU64,
    cancel: AtomicBool,
    active: AtomicBool,
}

impl ShardBeat {
    /// A fresh beat (no progress, not cancelled, not active).
    pub fn new() -> Self {
        ShardBeat::default()
    }

    /// Monotone progress counter (ticks once per applied op).
    pub fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    fn tick(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    /// Asks the shard to stop at the next opportunity (the wall-clock
    /// supervisor's lever; the spin chaos op polls it).
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether a cancel was requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Marks the shard as running / finished (supervisor only watches
    /// active beats).
    pub fn set_active(&self, active: bool) {
        self.active.store(active, Ordering::Relaxed);
    }

    /// Whether the shard is currently running.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }
}

/// How a shard ended.
#[derive(Debug)]
pub enum ShardOutcome {
    /// Ran to completion and self-replay matched.
    Ok {
        /// The sealed final state hash.
        state_hash: u64,
    },
    /// Failed; the boxed triple reproduces it.
    Failed(Box<FailureTriple>),
}

impl ShardOutcome {
    /// Whether the shard completed cleanly.
    pub fn is_ok(&self) -> bool {
        matches!(self, ShardOutcome::Ok { .. })
    }
}

/// Everything a finished shard hands back to the fleet.
#[derive(Debug)]
pub struct ShardReport {
    /// Shard index.
    pub index: usize,
    /// Shard seed.
    pub seed: u64,
    /// How it ended.
    pub outcome: ShardOutcome,
    /// Events applied (and recorded) before the end.
    pub events: usize,
    /// Virtual milliseconds the shard simulated.
    pub sim_ms: u64,
    /// The shard machine's full metrics registry at the end.
    pub metrics: MetricsRegistry,
    /// The interleaved campaign's report, when the plan scheduled one and
    /// the shard reached (and completed) it.
    pub campaign: Option<CampaignReport>,
    /// The shard machine's latency-sketch book at the end (exemplars are
    /// stamped with this shard's seed).
    pub sketches: SketchBook,
    /// Digest of the shard's kernel ledger for the fleet's cross-shard
    /// aggregation/diff view.
    pub ledger: LedgerSummary,
    /// The recorded event log, kept on clean shards so the soak can
    /// archive a replayable artifact per shard (failures carry theirs in
    /// the triple instead).
    pub log: Option<EventLog>,
    /// Index of the first event *after* the `snapshot` checkpoint below.
    pub snap_idx: usize,
    /// The last-good checkpoint paired with `log` (clean shards only).
    pub snapshot: Option<Snapshot>,
}

/// Live handles the workload generator steers by.
struct LiveState {
    guis: Vec<Gui>,
    spies: Vec<Pid>,
    launched: usize,
}

/// Runs one shard to completion (or failure) on the current thread,
/// ticking `beat` once per applied op.
pub fn run_shard(plan: &ShardPlan, beat: &ShardBeat) -> ShardReport {
    beat.set_active(true);
    let report = run_shard_inner(plan, beat);
    beat.set_active(false);
    report
}

fn run_shard_inner(plan: &ShardPlan, beat: &ShardBeat) -> ShardReport {
    // Boot, containing both refusals and boot-path panics.
    let boot = panic::catch_unwind(|| System::try_new(plan.config.clone()));
    let mut system = match boot {
        Ok(Ok(system)) => system,
        Ok(Err(e)) => return boot_failure(plan, format!("{e:?}")),
        Err(payload) => return boot_failure(plan, panic_message(&payload)),
    };

    // Exemplars this machine records resolve back to it by seed.
    system.set_sketch_seed(plan.seed);

    let mut log = EventLog {
        config: plan.config.clone(),
        events: Vec::new(),
        final_state_hash: None,
        final_ledger_head: None,
    };
    // Last-good checkpoint: starts at the boot state (zero events).
    let mut last_good = system.snapshot();
    let mut snap_idx = 0usize;

    let mut rng = SimRng::stream(plan.seed, 1);
    let mut live = LiveState {
        guis: Vec::new(),
        spies: Vec::new(),
        launched: 0,
    };

    // Recorded setup: one spy process (spawned, never interacted — the
    // policy oracle) and one GUI app to click on.
    let setup = [
        ShardOp::Sys(Event::SpawnProcess {
            parent: None,
            exe: "/usr/bin/.dropper".into(),
        }),
        ShardOp::Sys(Event::LaunchGuiApp {
            exe: "/usr/bin/app0".into(),
            rect: Rect::new(10, 10, 300, 200),
        }),
        ShardOp::Sys(Event::Settle),
    ];
    live.launched = 1;

    let steps: Vec<ShardOp> = (0..plan.steps)
        .map(|step| chaos_or_placeholder(plan, step))
        .collect();

    let total = setup.len() + steps.len();
    let mut campaign_report: Option<CampaignReport> = None;
    for (i, slot) in setup.into_iter().chain(steps).enumerate() {
        if beat.is_cancelled() {
            return failure(
                plan,
                &system,
                log,
                snap_idx,
                last_good,
                FailureKind::HungWall,
                None,
            );
        }
        // Scheduled campaign: its stages interleave here, each recorded
        // as an ordinary event, judged against its expectation.
        if let Some(slot) = plan.campaign {
            if campaign_report.is_none() && i >= 3 && i - 3 == slot.at_step {
                if !system.x_alive() {
                    // Campaign stages need a live display; recover first
                    // (recorded, so replay does the same).
                    let restart = Event::RestartX;
                    let outcome = apply_event(&mut system, &restart);
                    log.events.push(restart);
                    track_outcome(&outcome, &mut live);
                }
                match run_campaign_stages(&mut system, &mut log, slot.kind, plan.lenient_oracle) {
                    Ok(report) => campaign_report = Some(report),
                    Err(boxed) => {
                        let (kind, failing_op) = *boxed;
                        return failure(plan, &system, log, snap_idx, last_good, kind, failing_op);
                    }
                }
            }
        }
        // Placeholder slots are generated against the live system now.
        let op = match slot {
            ShardOp::Sys(Event::Settle) if i >= 3 => {
                generate_op(&mut rng, &system, &mut live, plan)
            }
            other => other,
        };
        let pre_hash = system.state_hash();
        let pre_head = system.ledger_head();

        match op {
            ShardOp::Chaos(ChaosOp::Panic) => {
                let payload = panic::catch_unwind(AssertUnwindSafe(|| injected_panic(plan.index)))
                    .expect_err("injected_panic always panics");
                log.final_state_hash = Some(pre_hash);
                log.final_ledger_head = Some(pre_head);
                return failure(
                    plan,
                    &system,
                    log,
                    snap_idx,
                    last_good,
                    FailureKind::Panic {
                        message: panic_message(&payload),
                    },
                    Some(ShardOp::Chaos(ChaosOp::Panic)),
                );
            }
            ShardOp::Chaos(ChaosOp::VirtualStall(jump)) => {
                // Not recorded: the stall is the fault, not an input.
                system.advance(jump);
                log.final_state_hash = Some(pre_hash);
                log.final_ledger_head = Some(pre_head);
                return failure(
                    plan,
                    &system,
                    log,
                    snap_idx,
                    last_good,
                    FailureKind::HungVirtual {
                        now: system.now(),
                        deadline: plan.virtual_deadline,
                    },
                    Some(ShardOp::Chaos(ChaosOp::VirtualStall(jump))),
                );
            }
            ShardOp::Chaos(ChaosOp::Spin) => {
                let start = Instant::now();
                while !beat.is_cancelled() && start.elapsed() < SPIN_BACKSTOP {
                    std::hint::spin_loop();
                }
                log.final_state_hash = Some(pre_hash);
                log.final_ledger_head = Some(pre_head);
                return failure(
                    plan,
                    &system,
                    log,
                    snap_idx,
                    last_good,
                    FailureKind::HungWall,
                    Some(ShardOp::Chaos(ChaosOp::Spin)),
                );
            }
            ShardOp::Sys(event) => {
                let applied =
                    panic::catch_unwind(AssertUnwindSafe(|| apply_event(&mut system, &event)));
                match applied {
                    Ok(outcome) => {
                        log.events.push(event);
                        track_outcome(&outcome, &mut live);
                    }
                    Err(payload) => {
                        log.final_state_hash = Some(pre_hash);
                        log.final_ledger_head = Some(pre_head);
                        return failure(
                            plan,
                            &system,
                            log,
                            snap_idx,
                            last_good,
                            FailureKind::Panic {
                                message: panic_message(&payload),
                            },
                            Some(ShardOp::Sys(event)),
                        );
                    }
                }
            }
            ShardOp::ExpectDeny(event) => {
                let applied =
                    panic::catch_unwind(AssertUnwindSafe(|| apply_event(&mut system, &event)));
                match applied {
                    Ok(outcome) => {
                        if let ApplyOutcome::Fd(Ok(_)) = outcome {
                            // The oracle: a never-interacted process was
                            // granted a protected device.
                            let path = match &event {
                                Event::OpenDevice { path, .. } => path.clone(),
                                _ => String::new(),
                            };
                            log.final_state_hash = Some(pre_hash);
                            log.final_ledger_head = Some(pre_head);
                            return failure(
                                plan,
                                &system,
                                log,
                                snap_idx,
                                last_good,
                                FailureKind::PolicyViolation { path },
                                Some(ShardOp::ExpectDeny(event)),
                            );
                        }
                        log.events.push(event);
                    }
                    Err(payload) => {
                        log.final_state_hash = Some(pre_hash);
                        log.final_ledger_head = Some(pre_head);
                        return failure(
                            plan,
                            &system,
                            log,
                            snap_idx,
                            last_good,
                            FailureKind::Panic {
                                message: panic_message(&payload),
                            },
                            Some(ShardOp::ExpectDeny(event)),
                        );
                    }
                }
            }
            ShardOp::Expect(expect, event) => {
                let applied =
                    panic::catch_unwind(AssertUnwindSafe(|| apply_event(&mut system, &event)));
                match applied {
                    Ok(outcome) => {
                        let verdict = campaign::outcome_granted(&event, &outcome)
                            .map(|g| campaign::judge(&expect, g, plan.lenient_oracle));
                        if let Some(StageVerdict::Regression(detail)) = verdict {
                            let path = match &event {
                                Event::OpenDevice { path, .. } => path.clone(),
                                _ => String::new(),
                            };
                            log.final_state_hash = Some(pre_hash);
                            log.final_ledger_head = Some(pre_head);
                            return failure(
                                plan,
                                &system,
                                log,
                                snap_idx,
                                last_good,
                                FailureKind::DefenseRegression {
                                    campaign: "fleet-oracle".into(),
                                    stage: path,
                                    detail,
                                },
                                Some(ShardOp::Expect(expect, event)),
                            );
                        }
                        log.events.push(event);
                        track_outcome(&outcome, &mut live);
                    }
                    Err(payload) => {
                        log.final_state_hash = Some(pre_hash);
                        log.final_ledger_head = Some(pre_head);
                        return failure(
                            plan,
                            &system,
                            log,
                            snap_idx,
                            last_good,
                            FailureKind::Panic {
                                message: panic_message(&payload),
                            },
                            Some(ShardOp::Expect(expect, event)),
                        );
                    }
                }
            }
        }

        beat.tick();

        // Virtual-time watchdog: a legitimate op mix never reaches the
        // deadline, so crossing it means a livelock-shaped bug.
        if system.now() > plan.virtual_deadline {
            log.final_state_hash = Some(system.state_hash());
            log.final_ledger_head = Some(system.ledger_head());
            return failure(
                plan,
                &system,
                log,
                snap_idx,
                last_good,
                FailureKind::HungVirtual {
                    now: system.now(),
                    deadline: plan.virtual_deadline,
                },
                None,
            );
        }

        // Periodic last-good checkpoint (never perturbs the state hash).
        if log.events.len() >= snap_idx + SNAP_EVERY && i + 1 < total {
            last_good = system.snapshot();
            snap_idx = log.events.len();
        }
    }

    // Chain-verify the run's ledgers before sealing: a shard whose own
    // recorded history fails verification is its own failure kind.
    if let Err(e) = system.verify_ledgers() {
        log.final_state_hash = Some(system.state_hash());
        log.final_ledger_head = Some(system.ledger_head());
        return failure(
            plan,
            &system,
            log,
            snap_idx,
            last_good,
            FailureKind::CorruptLedger {
                message: e.to_string(),
            },
            None,
        );
    }

    // Seal and self-verify: replay the whole log from boot and demand the
    // byte-identical state hash.
    let live_hash = system.state_hash();
    log.final_state_hash = Some(live_hash);
    log.final_ledger_head = Some(system.ledger_head());
    match replay(&log) {
        Ok(replayed) => {
            let got = replayed.state_hash();
            if got != live_hash {
                return failure(
                    plan,
                    &system,
                    log,
                    snap_idx,
                    last_good,
                    FailureKind::Divergence {
                        expected: live_hash,
                        got,
                    },
                    None,
                );
            }
        }
        Err(e) => {
            return failure(
                plan,
                &system,
                log,
                snap_idx,
                last_good,
                FailureKind::Boot {
                    message: format!("self-replay refused to boot: {e:?}"),
                },
                None,
            );
        }
    }

    let events = log.events.len();
    ShardReport {
        index: plan.index,
        seed: plan.seed,
        outcome: ShardOutcome::Ok {
            state_hash: live_hash,
        },
        events,
        sim_ms: system.now().as_millis(),
        metrics: safe_metrics(&system),
        campaign: campaign_report,
        sketches: safe_sketches(&system),
        ledger: safe_ledger(&system),
        log: Some(log),
        snap_idx,
        snapshot: Some(last_good),
    }
}

/// Runs a catalog campaign inline in a shard: every stage resolves to one
/// recorded event, judged stages go through [`campaign::judge`] with the
/// shard's oracle leniency, and a regression seals the log at the
/// pre-failure hash exactly like the spy-probe oracle. A resolve that
/// cannot produce its event (a launch failed because the display died
/// mid-campaign and left a handle unbound) aborts the campaign gracefully
/// instead of fabricating a non-reproducible panic triple.
fn run_campaign_stages(
    system: &mut System,
    log: &mut EventLog,
    kind: CampaignKind,
    lenient: bool,
) -> Result<CampaignReport, Box<(FailureKind, Option<ShardOp>)>> {
    let script = kind.build();
    let mut driver = CampaignDriver::new();
    let mut stages: Vec<StageReport> = Vec::with_capacity(script.stages.len());
    let suppressed_before = system
        .x_audit()
        .count(AuditCategory::ClickjackingSuppressed);
    let filtered_before = system
        .x_audit()
        .count(AuditCategory::SyntheticInputFiltered);

    for stage in &script.stages {
        let resolved =
            panic::catch_unwind(AssertUnwindSafe(|| driver.resolve(system, &stage.action)));
        let event = match resolved {
            Ok(event) => event,
            Err(_) => break,
        };
        let pre_hash = system.state_hash();
        let pre_head = system.ledger_head();
        let applied = panic::catch_unwind(AssertUnwindSafe(|| apply_event(system, &event)));
        let outcome = match applied {
            Ok(outcome) => outcome,
            Err(payload) => {
                log.final_state_hash = Some(pre_hash);
                log.final_ledger_head = Some(pre_head);
                return Err(Box::new((
                    FailureKind::Panic {
                        message: panic_message(&payload),
                    },
                    Some(ShardOp::Sys(event)),
                )));
            }
        };
        let granted = campaign::outcome_granted(&event, &outcome);
        let verdict = match (&stage.check, granted) {
            (Some(check), Some(g)) => Some(campaign::judge(&check.expect, g, lenient)),
            _ => None,
        };
        if let Some(StageVerdict::Regression(detail)) = verdict {
            log.final_state_hash = Some(pre_hash);
            log.final_ledger_head = Some(pre_head);
            let expect = stage.check.as_ref().expect("regression implies check");
            return Err(Box::new((
                FailureKind::DefenseRegression {
                    campaign: script.name.to_string(),
                    stage: stage.label.to_string(),
                    detail,
                },
                Some(ShardOp::Expect(expect.expect.clone(), event)),
            )));
        }
        log.events.push(event.clone());
        driver.absorb(&stage.action, &outcome);
        let rule = stage.action.resource_op().and_then(|op| {
            let pid = match &event {
                Event::OpenDevice { pid, .. } => *pid,
                _ => return None,
            };
            system
                .kernel()
                .explain_last(pid, op)
                .map(|o| o.trace.kind_str())
        });
        stages.push(StageReport {
            stage: stage.label,
            check: stage.check.clone(),
            granted,
            rule,
            verdict,
        });
    }

    Ok(CampaignReport {
        name: script.name,
        class: script.class,
        stages,
        clickjacking_suppressed: system
            .x_audit()
            .count(AuditCategory::ClickjackingSuppressed)
            .saturating_sub(suppressed_before),
        synthetic_filtered: system
            .x_audit()
            .count(AuditCategory::SyntheticInputFiltered)
            .saturating_sub(filtered_before),
        ledger_verified: system.verify_ledgers().is_ok(),
    })
}

/// Whether step `step` is a scheduled chaos slot; ordinary slots carry a
/// `Settle` placeholder that the loop swaps for a generated op.
fn chaos_or_placeholder(plan: &ShardPlan, step: usize) -> ShardOp {
    if plan.chaos.panic_at == Some(step) {
        ShardOp::Chaos(ChaosOp::Panic)
    } else if plan.chaos.stall_at == Some(step) {
        ShardOp::Chaos(ChaosOp::VirtualStall(plan.stall_jump()))
    } else if plan.chaos.spin_at == Some(step) {
        ShardOp::Chaos(ChaosOp::Spin)
    } else {
        ShardOp::Sys(Event::Settle)
    }
}

/// The expectation the oracle attaches to a spy probe under this plan: a
/// never-interacted process must be denied on a protected boot; on a
/// grant-all boot the grant is a *documented* bypass (the permissive
/// baseline grants by design) — unless strict mode keeps expecting
/// `Blocked`, which is the forced defense-regression lever.
fn spy_expectation(plan: &ShardPlan) -> Expectation {
    if plan.config.kernel.monitor.grant_all && !plan.oracle_strict {
        Expectation::ExpectedBypass {
            rationale: "grant-all baseline grants every request by design".into(),
        }
    } else {
        Expectation::Blocked
    }
}

/// Draws the next workload op against the live system. Reads the system
/// freely (handles, liveness) — determinism is not required here because
/// only the *recorded* events matter for replay.
fn generate_op(
    rng: &mut SimRng,
    system: &System,
    live: &mut LiveState,
    plan: &ShardPlan,
) -> ShardOp {
    // A dead display manager dominates everything: recover (or wait).
    if !system.x_alive() {
        return if rng.chance(0.7) {
            ShardOp::Sys(Event::RestartX)
        } else {
            ShardOp::Sys(Event::Advance(SimDuration::from_millis(
                rng.range(100, 800),
            )))
        };
    }
    let roll = rng.range(0, 100);
    match roll {
        0..=24 => ShardOp::Sys(Event::Advance(SimDuration::from_millis(rng.range(50, 900)))),
        25..=32 => ShardOp::Sys(Event::Settle),
        33..=47 => match pick_gui(rng, live) {
            Some(gui) => ShardOp::Sys(Event::ClickWindow { window: gui.window }),
            None => launch(rng, live),
        },
        48..=55 => ShardOp::Sys(Event::Key {
            ch: (b'a' + rng.range(0, 26) as u8) as char,
        }),
        56..=67 => match pick_gui(rng, live) {
            Some(gui) => ShardOp::Sys(Event::OpenDevice {
                pid: gui.pid,
                path: pick_device(rng),
            }),
            None => launch(rng, live),
        },
        68..=77 => match pick_spy(rng, live) {
            Some(pid) => ShardOp::Expect(
                spy_expectation(plan),
                Event::OpenDevice {
                    pid,
                    path: pick_device(rng),
                },
            ),
            None => ShardOp::Sys(Event::Settle),
        },
        78..=81 => match pick_gui(rng, live) {
            Some(gui) => ShardOp::Sys(Event::DrainEvents { client: gui.client }),
            None => launch(rng, live),
        },
        82..=83 => match ingest_batch(rng, system, live) {
            Some(op) => op,
            None => launch(rng, live),
        },
        84..=89 => launch(rng, live),
        90..=93 => match pick_spy(rng, live) {
            Some(pid) => ShardOp::Sys(Event::SysFork { pid }),
            None => ShardOp::Sys(Event::Settle),
        },
        94..=95 => ShardOp::Sys(Event::CrashX),
        _ => ShardOp::Sys(Event::Advance(SimDuration::from_millis(
            rng.range(1_000, 4_000),
        ))),
    }
}

/// Draws a batched ingestion event: a mixed run of interaction
/// notifications and permission requests over the live GUI pids at the
/// current virtual time. The whole batch records as ONE replay event, so
/// the recorded log exercises [`Event::IngestBatch`] end to end —
/// replayable and bisectable by construction, like every other op.
fn ingest_batch(rng: &mut SimRng, system: &System, live: &mut LiveState) -> Option<ShardOp> {
    if live.guis.is_empty() {
        return None;
    }
    let now = system.now();
    let ops = [ResourceOp::Mic, ResourceOp::Cam, ResourceOp::Screen];
    let len = rng.range(2, 9);
    let mut events = Vec::with_capacity(len as usize);
    for _ in 0..len {
        let gui = live.guis[rng.range(0, live.guis.len() as u64) as usize];
        if rng.chance(0.3) {
            events.push(IngestEvent::Interaction {
                pid: gui.pid,
                at: now,
            });
        } else {
            events.push(IngestEvent::Request(OpRequest {
                pid: gui.pid,
                op: ops[rng.range(0, ops.len() as u64) as usize],
                at: now,
            }));
        }
    }
    Some(ShardOp::Sys(Event::IngestBatch { events }))
}

fn pick_gui(rng: &mut SimRng, live: &LiveState) -> Option<Gui> {
    if live.guis.is_empty() {
        None
    } else {
        Some(live.guis[rng.range(0, live.guis.len() as u64) as usize])
    }
}

fn pick_spy(rng: &mut SimRng, live: &LiveState) -> Option<Pid> {
    if live.spies.is_empty() {
        None
    } else {
        Some(live.spies[rng.range(0, live.spies.len() as u64) as usize])
    }
}

fn pick_device(rng: &mut SimRng) -> String {
    DEVICES[rng.range(0, DEVICES.len() as u64) as usize].to_string()
}

fn launch(rng: &mut SimRng, live: &mut LiveState) -> ShardOp {
    live.launched += 1;
    ShardOp::Sys(Event::LaunchGuiApp {
        exe: format!("/usr/bin/app{}", live.launched),
        rect: Rect::new(
            rng.range(0, 600) as i32,
            rng.range(0, 400) as i32,
            rng.range(120, 320) as u32,
            rng.range(90, 240) as u32,
        ),
    })
}

/// Folds an op's outcome back into the live handle set.
fn track_outcome(outcome: &ApplyOutcome, live: &mut LiveState) {
    match outcome {
        ApplyOutcome::Gui(Ok(gui)) => {
            live.guis.push(*gui);
            if live.guis.len() > 6 {
                live.guis.remove(0);
            }
        }
        ApplyOutcome::Pid(Ok(pid)) => {
            // Spawned/forked processes are spy-lineage (never interacted);
            // their denials keep the oracle honest across fork.
            live.spies.push(*pid);
            if live.spies.len() > 4 {
                live.spies.remove(0);
            }
        }
        // The display manager restarted: every pre-crash window/client
        // handle is stale, drop them so the generator re-launches.
        ApplyOutcome::Restarted(Ok(_)) => live.guis.clear(),
        _ => {}
    }
}

/// Builds the failure-shaped [`ShardReport`]. The log must already be
/// sealed at the pre-failure hash (except hang-at-cancel, sealed here).
#[allow(clippy::too_many_arguments)]
fn failure(
    plan: &ShardPlan,
    system: &System,
    mut log: EventLog,
    snap_idx: usize,
    snapshot: Snapshot,
    kind: FailureKind,
    failing_op: Option<ShardOp>,
) -> ShardReport {
    if log.final_state_hash.is_none() {
        log.final_state_hash = Some(system.state_hash());
    }
    if log.final_ledger_head.is_none() {
        log.final_ledger_head = Some(system.ledger_head());
    }
    let events = log.events.len();
    let sim_ms = system.now().as_millis();
    let metrics = safe_metrics(system);
    ShardReport {
        index: plan.index,
        seed: plan.seed,
        outcome: ShardOutcome::Failed(Box::new(FailureTriple {
            index: plan.index,
            seed: plan.seed,
            kind,
            log,
            snap_idx,
            snapshot,
            failing_op,
            virtual_deadline: plan.virtual_deadline,
            chain_head: system.ledger_head(),
        })),
        events,
        sim_ms,
        metrics,
        campaign: None,
        sketches: safe_sketches(system),
        ledger: safe_ledger(system),
        log: None,
        snap_idx: 0,
        snapshot: None,
    }
}

/// The boot-refusal report: no snapshot exists yet, so the triple carries
/// an empty placeholder (the `Boot` reproduction path never restores it).
fn boot_failure(plan: &ShardPlan, message: String) -> ShardReport {
    ShardReport {
        index: plan.index,
        seed: plan.seed,
        outcome: ShardOutcome::Failed(Box::new(FailureTriple {
            index: plan.index,
            seed: plan.seed,
            kind: FailureKind::Boot { message },
            log: EventLog {
                config: plan.config.clone(),
                events: Vec::new(),
                final_state_hash: None,
                final_ledger_head: None,
            },
            snap_idx: 0,
            snapshot: Snapshot::new(Vec::new(), Vec::new()),
            failing_op: None,
            virtual_deadline: plan.virtual_deadline,
            chain_head: 0,
        })),
        events: 0,
        sim_ms: 0,
        metrics: MetricsRegistry::new(),
        campaign: None,
        sketches: SketchBook::new(),
        ledger: LedgerSummary::default(),
        log: None,
        snap_idx: 0,
        snapshot: None,
    }
}

/// Collects the shard's metrics, tolerating a machine left inconsistent
/// by a contained panic.
fn safe_metrics(system: &System) -> MetricsRegistry {
    panic::catch_unwind(AssertUnwindSafe(|| system.metrics_registry())).unwrap_or_default()
}

/// Copies the shard's sketch book out, tolerating a contained panic (the
/// handle's lock is poison-tolerant, but the copy itself stays guarded).
fn safe_sketches(system: &System) -> SketchBook {
    panic::catch_unwind(AssertUnwindSafe(|| system.sketch_book())).unwrap_or_default()
}

/// Digests the shard's kernel ledger, tolerating a contained panic.
fn safe_ledger(system: &System) -> LedgerSummary {
    panic::catch_unwind(AssertUnwindSafe(|| system.ledger_summary())).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{replay_triple, replay_triple_from_snapshot};
    use crate::schedule::{ChaosSchedule, FleetWorkload};

    fn plan(seed_master: u64, index: usize) -> ShardPlan {
        ShardPlan::derive(seed_master, index, &FleetWorkload::default())
    }

    #[test]
    fn clean_shard_completes_and_self_replays() {
        let beat = ShardBeat::new();
        let report = run_shard(&plan(11, 0), &beat);
        match report.outcome {
            ShardOutcome::Ok { state_hash } => assert_ne!(state_hash, 0),
            ShardOutcome::Failed(t) => panic!("clean shard failed: {:?}", t.kind),
        }
        assert!(report.events > 100, "setup + steps should all record");
        assert!(beat.progress() > 100);
        assert!(!beat.is_active(), "beat must clear after the run");
        assert!(
            report
                .metrics
                .counter("overhaul_monitor_notifications_total")
                > 0,
            "shard metrics must carry kernel counters"
        );
    }

    #[test]
    fn injected_panic_is_contained_and_triple_reproduces_both_ways() {
        quiet_injected_panics();
        let mut p = plan(12, 3);
        p.chaos = ChaosSchedule {
            panic_at: Some(40),
            ..ChaosSchedule::default()
        };
        let report = std::thread::Builder::new()
            .name("overhaul-shard-test".into())
            .spawn(move || run_shard(&p, &ShardBeat::new()))
            .unwrap()
            .join()
            .unwrap();
        let triple = match report.outcome {
            ShardOutcome::Failed(t) => t,
            ShardOutcome::Ok { .. } => panic!("panic shard completed"),
        };
        assert!(matches!(triple.kind, FailureKind::Panic { .. }));
        assert_ne!(triple.chain_head, 0, "triple must carry the chain head");
        assert!(triple.log.final_ledger_head.is_some());
        let boot = replay_triple(&triple);
        assert!(boot.is_reproduced(), "from boot: {boot:?}");
        assert_eq!(boot, replay_triple_from_snapshot(&triple));
    }

    #[test]
    fn virtual_stall_trips_the_watchdog_and_reproduces() {
        let mut p = plan(13, 5);
        p.chaos = ChaosSchedule {
            stall_at: Some(60),
            ..ChaosSchedule::default()
        };
        let report = run_shard(&p, &ShardBeat::new());
        let triple = match report.outcome {
            ShardOutcome::Failed(t) => t,
            ShardOutcome::Ok { .. } => panic!("stalled shard completed"),
        };
        assert!(matches!(triple.kind, FailureKind::HungVirtual { .. }));
        assert!(replay_triple(&triple).is_reproduced());
        assert!(replay_triple_from_snapshot(&triple).is_reproduced());
    }

    #[test]
    fn cancelled_spin_is_reported_as_wall_hang() {
        let mut p = plan(14, 7);
        p.chaos = ChaosSchedule {
            spin_at: Some(10),
            ..ChaosSchedule::default()
        };
        let beat = std::sync::Arc::new(ShardBeat::new());
        let beat2 = beat.clone();
        let handle = std::thread::spawn(move || run_shard(&p, &beat2));
        // Supervisor-in-miniature: wait for progress to stall, cancel.
        std::thread::sleep(Duration::from_millis(120));
        beat.request_cancel();
        let report = handle.join().unwrap();
        let triple = match report.outcome {
            ShardOutcome::Failed(t) => t,
            ShardOutcome::Ok { .. } => panic!("spinning shard completed"),
        };
        assert_eq!(triple.kind, FailureKind::HungWall);
        assert!(replay_triple(&triple).is_reproduced());
    }

    #[test]
    fn grant_all_shard_completes_under_the_expectation_aware_oracle() {
        // The old deny-all oracle flagged every grant-all shard as a
        // policy violation. The expectation-aware oracle documents those
        // grants as ExpectedBypass, so grant-all shards complete cleanly.
        let w = FleetWorkload {
            grant_all: true,
            ..FleetWorkload::default()
        };
        for index in 0..4 {
            let p = ShardPlan::derive(21, index, &w);
            let report = run_shard(&p, &ShardBeat::new());
            if let ShardOutcome::Failed(t) = report.outcome {
                panic!("grant_all shard {index} failed: {:?}", t.kind);
            }
        }
    }

    #[test]
    fn strict_oracle_on_grant_all_forces_a_defense_regression() {
        let w = FleetWorkload {
            grant_all: true,
            oracle_strict: true,
            ..FleetWorkload::default()
        };
        // Scan a few shards: the spy-open op is probabilistic per step.
        let mut seen = false;
        for index in 0..8 {
            let p = ShardPlan::derive(21, index, &w);
            assert!(p.oracle_strict);
            assert!(!p.lenient_oracle, "strict mode disables fault excusal");
            let report = run_shard(&p, &ShardBeat::new());
            if let ShardOutcome::Failed(t) = report.outcome {
                assert!(
                    matches!(t.kind, FailureKind::DefenseRegression { .. }),
                    "strict grant_all shard failed some other way: {:?}",
                    t.kind
                );
                assert!(matches!(t.failing_op, Some(ShardOp::Expect(..))));
                assert!(replay_triple(&t).is_reproduced());
                assert!(replay_triple_from_snapshot(&t).is_reproduced());
                seen = true;
                break;
            }
        }
        assert!(seen, "no shard exercised the spy-open op in 8 tries");
    }

    #[test]
    fn campaign_shard_completes_and_reports_the_campaign() {
        use overhaul_apps::campaign::AttackClass;
        let w = FleetWorkload {
            campaign_p: 1.0,
            ..FleetWorkload::default()
        };
        let mut classes = std::collections::BTreeSet::new();
        for index in 0..6 {
            let p = ShardPlan::derive(41, index, &w);
            assert!(p.campaign.is_some());
            let report = run_shard(&p, &ShardBeat::new());
            match report.outcome {
                ShardOutcome::Ok { .. } => {
                    let campaign = report
                        .campaign
                        .expect("completed campaign shard must carry its report");
                    assert!(
                        campaign.regressions().is_empty(),
                        "{}: {:?}",
                        campaign.name,
                        campaign.regressions()
                    );
                    assert!(!campaign.stages.is_empty());
                    classes.insert(campaign.class);
                }
                ShardOutcome::Failed(t) => {
                    panic!("campaign shard {index} failed: {:?}", t.kind)
                }
            }
        }
        assert!(
            classes.contains(&AttackClass::HoverOverlay)
                || classes.contains(&AttackClass::DelegationAbuse)
                || classes.contains(&AttackClass::OperationBinding)
        );
    }

    #[test]
    fn campaign_shards_are_deterministic_and_self_replay() {
        let w = FleetWorkload {
            campaign_p: 1.0,
            ..FleetWorkload::default()
        };
        let p = ShardPlan::derive(43, 1, &w);
        let a = run_shard(&p, &ShardBeat::new());
        let b = run_shard(&p, &ShardBeat::new());
        match (&a.outcome, &b.outcome) {
            (ShardOutcome::Ok { state_hash: x }, ShardOutcome::Ok { state_hash: y }) => {
                assert_eq!(x, y, "campaign shards must be seed-deterministic")
            }
            other => panic!("campaign shard did not complete twice: {other:?}"),
        }
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn shard_runs_are_deterministic_per_seed() {
        let a = run_shard(&plan(31, 2), &ShardBeat::new());
        let b = run_shard(&plan(31, 2), &ShardBeat::new());
        match (&a.outcome, &b.outcome) {
            (ShardOutcome::Ok { state_hash: x }, ShardOutcome::Ok { state_hash: y }) => {
                assert_eq!(x, y)
            }
            (ShardOutcome::Failed(x), ShardOutcome::Failed(y)) => {
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.log.final_state_hash, y.log.final_state_hash);
                assert_eq!(x.chain_head, y.chain_head);
            }
            other => panic!("seed-identical shards disagreed: {other:?}"),
        }
        assert_eq!(a.events, b.events);
        assert_eq!(a.sim_ms, b.sim_ms);
    }
}
