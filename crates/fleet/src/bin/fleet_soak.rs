//! Fleet soak driver: hundreds of supervised shards under chaos.
//!
//! ```text
//! cargo run --release -p overhaul-fleet --bin fleet_soak [-- --quick] \
//!     [--shards N] [--seed S]
//! ```
//!
//! Runs `N` independently-seeded shards (default 256; 64 under
//! `--quick`, the CI mode) through randomized workload + fault + chaos
//! schedules: injected panics, virtual-time stalls, wall-clock spins,
//! seeded channel/VFS faults, and scheduled X crashes. The run must
//! complete without aborting; every failure is reported as a bisectable
//! `(seed, sealed event log, last-good snapshot)` triple; and the driver
//! then *verifies each triple* by replaying it from boot, from the
//! snapshot, and through a serialization round-trip — demanding the
//! byte-identical pre-failure state hash every time. A dedicated
//! forced-panic shard proves the containment + shrink + replay pipeline
//! end to end even when the probabilistic chaos draws no panic, and a
//! forced defense-regression shard (grant-all boot, strict oracle) proves
//! the campaign/oracle detection path the same way.
//!
//! Roughly a third of the shards interleave a seeded attack campaign
//! (hover theft, delegation abuse, operation-binding confusion) with
//! their chaos steps; completed campaigns aggregate into the defense
//! matrix printed with the report.
//!
//! Exit status is non-zero on any unexplained divergence, any triple
//! that fails to reproduce, a missing forced-panic or forced-regression
//! reproduction, any unexpected defense regression, or a quick run with
//! no campaign-bearing shard. Writes `BENCH_fleet.json` with the
//! headline fleet numbers.

use std::collections::BTreeMap;
use std::path::PathBuf;

use overhaul_fleet::{
    replay_triple, replay_triple_from_snapshot, run_fleet, shrink_triple, triple_file_name,
    write_soak_dir, ChaosSpec, FailureKind, FailureTriple, FleetConfig, FleetWorkload, ShardBeat,
    ShardPlan,
};
use overhaul_sim::{snapshot::fnv1a64, BenchArtifact};

fn arg_value(name: &str) -> Option<u64> {
    arg_str(name).and_then(|v| v.parse().ok())
}

fn arg_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let shards = arg_value("--shards").unwrap_or(if quick { 64 } else { 256 }) as usize;
    let seed = arg_value("--seed").unwrap_or(0xf1ee7);
    let mode = if quick { "quick" } else { "full" };

    let workload = FleetWorkload {
        steps: if quick { 60 } else { 120 },
        chaos: ChaosSpec::soak(),
        // Roughly a third of the shards interleave a seeded attack
        // campaign with their chaos steps; over 64 quick shards the
        // probability of drawing none is (1 - 0.35)^64 ~ 1e-12.
        campaign_p: 0.35,
        ..FleetWorkload::default()
    };
    let config = FleetConfig {
        master_seed: seed,
        shards,
        workload,
        // The soak must see every shard: the budget only exists to prove
        // graceful degradation elsewhere (tests); here it is the fleet
        // size itself.
        failure_budget: shards,
        shrink_replays: if quick { 60 } else { 200 },
        ..FleetConfig::default()
    };

    println!("fleet soak ({mode}): {shards} shards, master seed {seed:#x}, chaos = soak\n");
    let report = run_fleet(&config);

    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in &report.failures {
        *by_kind.entry(f.triple.kind.label()).or_insert(0) += 1;
    }
    println!(
        "{} ok, {} failed, {} skipped{} in {:.2}s ({:.1} shards/s, {:.1} machine-hours/wall-hour)",
        report.ok,
        report.failed,
        report.skipped,
        if report.degraded { " [DEGRADED]" } else { "" },
        report.wall.as_secs_f64(),
        report.shards_per_sec(),
        report.machine_hours_per_wall_hour(),
    );
    println!(
        "{} events applied, {:.1} virtual machine-hours simulated",
        report.events_total,
        report.sim_ms_total as f64 / 3_600_000.0
    );
    for (kind, n) in &by_kind {
        println!("  failure kind {kind}: {n}");
    }
    println!(
        "\n{} campaign-bearing shards completed; defense matrix:\n{}",
        report.campaign_shards,
        report.matrix.render()
    );

    // Merged observability plane: per-mechanism latency percentiles over
    // every shard's sketches, plus the cross-shard ledger view.
    println!(
        "merged fleet latency sketches:\n{}",
        report.render_latency()
    );
    println!(
        "merged sketch canonical hash {:#018x} (deterministic plane)",
        fnv1a64(&report.sketches.canonical_bytes())
    );
    let ledger_entries_total: u64 = report.ledgers.iter().map(|(_, l)| l.entries).sum();
    println!(
        "ledger view: {} shards, {} retained entries, {} distinct chain heads\n",
        report.ledgers.len(),
        ledger_entries_total,
        report.distinct_ledger_heads()
    );

    // Verify every reported triple: from boot, from the last-good
    // snapshot, and through a byte round-trip — all three must reproduce
    // the identical pre-failure state hash.
    let mut bad = 0usize;
    for f in &report.failures {
        let t = &f.triple;
        let from_boot = replay_triple(t);
        let from_snap = replay_triple_from_snapshot(t);
        let decoded = match FailureTriple::from_bytes(&t.to_bytes()) {
            Ok(d) => d,
            Err(e) => {
                println!("  shard {}: triple did not round-trip: {e:?}", t.index);
                bad += 1;
                continue;
            }
        };
        let from_bytes = replay_triple(&decoded);
        let ok = from_boot.is_reproduced() && from_snap == from_boot && from_bytes == from_boot;
        if !ok {
            println!(
                "  shard {} ({}): NOT reproduced — boot {from_boot:?}, snap {from_snap:?}, \
                 bytes {from_bytes:?}",
                t.index,
                t.kind.label()
            );
            bad += 1;
        } else {
            println!(
                "  shard {:>4} seed {:#018x} {:<16} events {:>3} -> {:<3} replay OK",
                t.index,
                t.seed,
                t.kind.label(),
                f.original_events,
                f.shrunk_events
            );
        }
    }

    let divergences = by_kind.get("divergence").copied().unwrap_or(0);

    // Forced injected-panic shard: even if the probabilistic chaos drew no
    // panic this seed, prove containment -> triple -> shrink -> replay.
    overhaul_fleet::quiet_injected_panics();
    let mut forced = ShardPlan::derive(seed ^ 0xdead_beef, shards, &config.workload);
    forced.chaos.panic_at = Some(config.workload.steps / 2);
    forced.chaos.stall_at = None;
    forced.chaos.spin_at = None;
    let forced_report = std::thread::Builder::new()
        .name("overhaul-shard-forced".into())
        .spawn(move || overhaul_fleet::run_shard(&forced, &ShardBeat::new()))
        .expect("spawn forced shard")
        .join()
        .expect("forced shard thread");
    let mut forced_triple: Option<FailureTriple> = None;
    let forced_ok = match forced_report.outcome {
        overhaul_fleet::ShardOutcome::Failed(triple)
            if matches!(triple.kind, FailureKind::Panic { .. }) =>
        {
            let shrunk = shrink_triple(&triple, config.shrink_replays);
            forced_triple = Some(shrunk.triple.clone());
            let repro = replay_triple(&shrunk.triple);
            println!(
                "\nforced panic shard: contained, events {} -> {}, replay {}",
                shrunk.original_events,
                shrunk.shrunk_events,
                if repro.is_reproduced() {
                    "OK"
                } else {
                    "FAILED"
                }
            );
            repro.is_reproduced() && replay_triple_from_snapshot(&shrunk.triple).is_reproduced()
        }
        other => {
            println!("\nforced panic shard did not fail as a panic: {other:?}");
            false
        }
    };

    // Forced defense-regression shard: a grant-all boot under a strict
    // deny-expecting oracle with faults and chaos cleared — the first spy
    // probe is a wrongful grant, which must become a DefenseRegression
    // triple that reproduces all three ways (boot, snapshot, bytes).
    let strict_workload = FleetWorkload {
        grant_all: true,
        oracle_strict: true,
        campaign_p: 0.0,
        chaos: ChaosSpec {
            panic_p: 0.0,
            stall_p: 0.0,
            spin_p: 0.0,
            fault_intensity: 0.0,
        },
        ..config.workload
    };
    let forced_defense = ShardPlan::derive(seed ^ 0xfee1_dead, shards + 1, &strict_workload);
    let forced_defense_report = std::thread::Builder::new()
        .name("overhaul-shard-forced-defense".into())
        .spawn(move || overhaul_fleet::run_shard(&forced_defense, &ShardBeat::new()))
        .expect("spawn forced defense shard")
        .join()
        .expect("forced defense shard thread");
    let forced_defense_ok = match forced_defense_report.outcome {
        overhaul_fleet::ShardOutcome::Failed(triple)
            if matches!(triple.kind, FailureKind::DefenseRegression { .. }) =>
        {
            let shrunk = shrink_triple(&triple, config.shrink_replays);
            let from_boot = replay_triple(&shrunk.triple);
            let from_snap = replay_triple_from_snapshot(&shrunk.triple);
            let from_bytes = FailureTriple::from_bytes(&shrunk.triple.to_bytes())
                .map(|d| replay_triple(&d))
                .unwrap_or(overhaul_fleet::Reproduction::Broken {
                    detail: "triple bytes did not round-trip".into(),
                });
            let ok = from_boot.is_reproduced() && from_snap == from_boot && from_bytes == from_boot;
            println!(
                "forced defense-regression shard: detected, events {} -> {}, replay {}",
                shrunk.original_events,
                shrunk.shrunk_events,
                if ok {
                    "OK (boot+snapshot+bytes)"
                } else {
                    "FAILED"
                }
            );
            if !ok {
                println!("  boot {from_boot:?}, snap {from_snap:?}, bytes {from_bytes:?}");
            }
            ok
        }
        other => {
            println!("forced defense-regression shard did not regress: {other:?}");
            false
        }
    };

    let defense_regressions = by_kind.get("defense_regression").copied().unwrap_or(0);

    let artifact = BenchArtifact::new("fleet")
        .text("mode", mode)
        .int("shards", report.shards as u64)
        .int("ok", report.ok as u64)
        .int("failed", report.failed as u64)
        .int("skipped", report.skipped as u64)
        .int("events_total", report.events_total)
        .int("sim_ms_total", report.sim_ms_total)
        .num("wall_s", report.wall.as_secs_f64())
        .num("shards_per_sec", report.shards_per_sec())
        .num(
            "machine_hours_per_wall_hour",
            report.machine_hours_per_wall_hour(),
        )
        .int("divergences", divergences as u64)
        .int("triples_not_reproduced", bad as u64)
        .int("campaign_shards", report.campaign_shards as u64)
        .int("defense_regressions", defense_regressions as u64)
        .int("expected_bypasses", report.matrix.bypasses() as u64)
        .int(
            "attack_classes_reported",
            report.matrix.classes_covered() as u64,
        );
    match artifact.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench artifact: {e}"),
    }

    // Merged latency artifact. Wall-clock percentiles are informational
    // (they vary with the host); the CI diff gate pins the count-shaped
    // keys, which are deterministic for a given master seed.
    let merged = &report.sketches;
    let decide_samples = merged
        .wall_merged(&overhaul_sim::Mechanism::parse("decide").expect("decide parses"))
        .count();
    let mut latency = BenchArtifact::new("fleet_latency")
        .text("mode", mode)
        .int("mechanisms_recorded", merged.recorded().len() as u64)
        .int("ledger_entries_total", ledger_entries_total)
        .int(
            "ledger_heads_distinct",
            report.distinct_ledger_heads() as u64,
        )
        .int("decide_samples", decide_samples);
    for mech in merged.recorded() {
        let s = merged.wall_merged(&[mech]);
        let label = mech.label();
        latency = latency
            .int(&format!("{label}_samples"), s.count())
            .int(&format!("{label}_p50_ns"), s.quantile(0.50))
            .int(&format!("{label}_p90_ns"), s.quantile(0.90))
            .int(&format!("{label}_p99_ns"), s.quantile(0.99))
            .int(&format!("{label}_p999_ns"), s.quantile(0.999));
    }
    match latency.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write latency artifact: {e}"),
    }

    // Persist the queryable soak dir: merged sketches, one archive per
    // clean shard, and the forced-panic triple for `ovq why`.
    if let Some(out) = arg_str("--out") {
        let dir = PathBuf::from(out);
        match write_soak_dir(&dir, &report.sketches, &report.archives) {
            Ok(()) => {
                println!(
                    "wrote soak dir {} ({} shard archives)",
                    dir.display(),
                    report.archives.len()
                );
                if let Some(triple) = &forced_triple {
                    let path = dir.join(triple_file_name(triple.index));
                    match std::fs::write(&path, triple.to_bytes()) {
                        Ok(()) => println!("wrote {}", path.display()),
                        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
                    }
                }
            }
            Err(e) => eprintln!("warning: could not write soak dir: {e}"),
        }
    }

    let mut failed_run = false;
    if divergences > 0 {
        println!("FAIL: {divergences} unexplained replay divergences");
        failed_run = true;
    }
    if bad > 0 {
        println!("FAIL: {bad} failure triples did not reproduce on replay");
        failed_run = true;
    }
    if !forced_ok {
        println!("FAIL: forced injected-panic shard did not yield a replayable triple");
        failed_run = true;
    }
    if !forced_defense_ok {
        println!(
            "FAIL: forced defense-regression shard did not yield a three-way-replayable triple"
        );
        failed_run = true;
    }
    if defense_regressions > 0 {
        println!(
            "FAIL: {defense_regressions} unexpected defense regressions in the probabilistic fleet"
        );
        failed_run = true;
    }
    if report.campaign_shards == 0 {
        println!("FAIL: no campaign-bearing shard completed (campaign_p = 0.35)");
        failed_run = true;
    }
    if report.degraded {
        println!("FAIL: soak fleet degraded (budget was the fleet size — a scheduling bug)");
        failed_run = true;
    }
    if failed_run {
        std::process::exit(1);
    }
    println!(
        "\nOK: {} shards supervised, {} failures all bisectable and replay-exact, 0 divergences, \
         {} campaigns with 0 defense regressions",
        report.shards, report.failed, report.campaign_shards
    );
}
