//! Ledger end-to-end verification driver: the CI gate on the
//! hash-chained authoritative history.
//!
//! ```text
//! cargo run --release -p overhaul-fleet --bin ledger_verify [-- --quick]
//! ```
//!
//! Drives one recorded machine through a faulted, traced, snapshotted
//! soak — GUI apps, interaction-gated device opens, hot-plug/rename
//! churn, display-manager crashes, an enabled span tracer, and a mid-run
//! checkpoint — then proves the ledger invariants the fleet depends on:
//!
//! 1. the live chain verifies (`verify_chain` on both components);
//! 2. the sealed ledger survives a byte round-trip onto the same head;
//! 3. any single-bit corruption of those bytes is *rejected* (typed
//!    error at decode or verify, sampled across the buffer);
//! 4. `reduce()` re-derives the live control-plane state byte-identically
//!    — from boot, after a replay from boot, and after a replay resumed
//!    from the mid-run snapshot;
//! 5. both replays re-land on the identical sealed chain head.
//!
//! Prints chain-verify throughput (entries/sec) and ledger growth per
//! simulated machine-hour, and writes `BENCH_ledger_verify.json`.
//! Exits non-zero on any violated invariant.

use std::time::Instant;

use overhaul_core::{replay, replay_from, Event, OverhaulConfig, Recorder, System};
use overhaul_kernel::device::DeviceClass;
use overhaul_sim::{BenchArtifact, Ledger, SimDuration, SimRng};
use overhaul_xserver::geometry::Rect;

/// One failed invariant, carried to the exit-status accounting.
fn fail(violations: &mut usize, what: &str) {
    println!("FAIL: {what}");
    *violations += 1;
}

/// Runs the faulted/traced soak, checkpointing halfway. Returns the
/// finished machine, its event log, the mid-run snapshot, and the event
/// count at the checkpoint.
fn soak(
    rounds: usize,
) -> (
    System,
    overhaul_core::EventLog,
    overhaul_sim::Snapshot,
    usize,
) {
    // Traced: the tracing flag rides in the recorded config, so replays
    // boot with the identical tracer.
    let mut config = OverhaulConfig::protected();
    config.tracing = true;
    let mut rec = Recorder::new(config);
    let gui = rec
        .apply(Event::LaunchGuiApp {
            exe: "/usr/bin/soak-editor".into(),
            rect: Rect::new(10, 10, 640, 480),
        })
        .gui()
        .expect("launch gui app");
    rec.apply(Event::Settle);

    let mut snap = None;
    let mut snap_idx = 0usize;
    for round in 0..rounds {
        rec.apply(Event::ClickWindow { window: gui.window });
        rec.apply(Event::OpenDevice {
            pid: gui.pid,
            path: "/dev/snd/mic0".into(),
        });
        rec.apply(Event::OpenDevice {
            pid: gui.pid,
            path: "/dev/video0".into(),
        });
        rec.apply(Event::Advance(SimDuration::from_secs(9)));
        // Unattended open: δ has expired, so this one is denied — the
        // ledger records denial verdicts too.
        rec.apply(Event::OpenDevice {
            pid: gui.pid,
            path: "/dev/snd/mic0".into(),
        });
        match round % 16 {
            3 => {
                rec.apply(Event::AttachDevice {
                    class: DeviceClass::Camera,
                    label: format!("hotplug cam {round}"),
                    path: format!("/dev/video{}", 100 + round),
                });
            }
            7 => {
                rec.apply(Event::UdevRename {
                    old: format!("/dev/video{}", 100 + round - 4),
                    new: format!("/dev/video{}", 200 + round),
                });
            }
            11 => {
                // Display-manager fault: sever and re-establish the
                // trusted channel mid-soak.
                rec.apply(Event::CrashX);
                rec.apply(Event::RestartX);
                rec.apply(Event::ClickWindow { window: gui.window });
            }
            _ => {}
        }
        if round == rounds / 2 {
            snap = Some(rec.snapshot());
            snap_idx = rec.events_recorded();
        }
    }
    let snap = snap.expect("soak long enough to checkpoint");
    let (system, log) = rec.finish();
    (system, log, snap, snap_idx)
}

/// Sampled single-bit corruption: every flip must be rejected at decode
/// or fail chain verification. Returns the number of undetected flips.
fn corruption_sweep(bytes: &[u8], stride: usize) -> usize {
    let mut undetected = 0usize;
    let mut rng = SimRng::stream(0x1ed9e4, 9);
    for byte in (0..bytes.len()).step_by(stride) {
        let bit = rng.range(0, 8) as u8;
        let mut fuzzed = bytes.to_vec();
        fuzzed[byte] ^= 1 << bit;
        if let Ok(ledger) = Ledger::from_bytes(&fuzzed) {
            if ledger.verify_chain().is_ok() {
                println!(
                    "  undetected flip: bit {bit} of byte {byte}/{}",
                    bytes.len()
                );
                undetected += 1;
            }
        }
    }
    undetected
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 200 } else { 1_500 };
    let mode = if quick { "quick" } else { "full" };
    println!("ledger verification soak ({mode}): {rounds} rounds, traced, faulted, checkpointed\n");

    let mut violations = 0usize;
    let (system, log, snap, snap_idx) = soak(rounds);
    let machine_hours = system.now().as_millis() as f64 / 3_600_000.0;

    // 1. The live chain verifies.
    if let Err(e) = system.verify_ledgers() {
        fail(&mut violations, &format!("live chain did not verify: {e}"));
    }

    // 2. Byte round-trip re-lands on the same head (both components).
    let kernel_bytes = system.kernel_ledger().to_bytes();
    let x_bytes = system.x_ledger().to_bytes();
    let total_bytes = kernel_bytes.len() + x_bytes.len();
    let total_entries = system.kernel_ledger().entries().len() + system.x_ledger().entries().len();
    for (label, bytes, live) in [
        ("kernel", &kernel_bytes, system.kernel_ledger()),
        ("display", &x_bytes, system.x_ledger()),
    ] {
        match Ledger::from_bytes(bytes) {
            Ok(decoded) => {
                if let Err(e) = decoded.verify_chain() {
                    fail(&mut violations, &format!("{label} round-trip chain: {e}"));
                }
                if decoded.head() != live.head() {
                    fail(
                        &mut violations,
                        &format!("{label} round-trip changed the head"),
                    );
                }
            }
            Err(e) => fail(
                &mut violations,
                &format!("{label} ledger did not decode: {e:?}"),
            ),
        }
    }

    // 3. Sampled single-bit corruption is always detected.
    let undetected = corruption_sweep(&kernel_bytes, if quick { 97 } else { 13 });
    if undetected > 0 {
        fail(
            &mut violations,
            &format!("{undetected} single-bit corruptions went undetected"),
        );
    }

    // 4+5. Replays from boot and from the mid-run snapshot re-land on the
    // sealed head, and reduction matches the live control plane each time.
    let live_head = system.ledger_head();
    let live_plane = system.control_plane();
    if system.reduce() != live_plane {
        fail(
            &mut violations,
            "live reduce() diverged from the control plane",
        );
    }
    match replay(&log) {
        Ok(replayed) => {
            if replayed.state_hash() != system.state_hash() {
                fail(&mut violations, "replay from boot diverged in state");
            }
            if replayed.ledger_head() != live_head {
                fail(
                    &mut violations,
                    "replay from boot re-landed on a different chain head",
                );
            }
            if replayed.reduce() != live_plane {
                fail(&mut violations, "replay-from-boot reduction diverged");
            }
        }
        Err(e) => fail(&mut violations, &format!("replay from boot failed: {e:?}")),
    }
    match replay_from(&snap, log.suffix(snap_idx), log.final_state_hash) {
        Ok(resumed) => {
            if resumed.state_hash() != system.state_hash() {
                fail(&mut violations, "replay from snapshot diverged in state");
            }
            if resumed.ledger_head() != live_head {
                fail(
                    &mut violations,
                    "replay from snapshot re-landed on a different chain head",
                );
            }
            if resumed.reduce() != live_plane {
                fail(&mut violations, "replay-from-snapshot reduction diverged");
            }
        }
        Err(e) => fail(
            &mut violations,
            &format!("replay from snapshot failed: {e:?}"),
        ),
    }

    // Chain-verify throughput over the sealed history.
    let reps = if quick { 50 } else { 400 };
    let start = Instant::now();
    for _ in 0..reps {
        system.verify_ledgers().expect("verified above");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let entries_per_sec = (total_entries * reps) as f64 / elapsed.max(1e-9);
    let bytes_per_machine_hour = total_bytes as f64 / machine_hours.max(1e-9);

    println!(
        "\n{total_entries} entries, {total_bytes} bytes sealed over {machine_hours:.2} \
         simulated machine-hours"
    );
    println!(
        "chain verify: {entries_per_sec:.0} entries/s; ledger growth: \
         {bytes_per_machine_hour:.0} bytes/machine-hour"
    );

    let artifact = BenchArtifact::new("ledger_verify")
        .text("mode", mode)
        .int("rounds", rounds as u64)
        .int("entries", total_entries as u64)
        .int("ledger_bytes", total_bytes as u64)
        .num("machine_hours", machine_hours)
        .num("verify_entries_per_sec", entries_per_sec)
        .num("bytes_per_machine_hour", bytes_per_machine_hour)
        .int("violations", violations as u64);
    match artifact.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write bench artifact: {e}"),
    }

    if violations > 0 {
        println!("\nFAIL: {violations} ledger invariant(s) violated");
        std::process::exit(1);
    }
    println!(
        "\nOK: chain verified live, after round-trip, from boot, and from the mid-run \
         snapshot; all sampled corruptions detected; state is a pure reduction of the ledger"
    );
}
