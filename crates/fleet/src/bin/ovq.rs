//! `ovq` — query a saved soak artifact dir.
//!
//! ```text
//! ovq [--dir DIR] p50|p90|p99|p999 <mechanism>
//! ovq [--dir DIR] exemplar <mechanism> [--p 99]
//! ovq [--dir DIR] ledger-diff <shardA> <shardB>
//! ovq why --triple <path>
//! ```
//!
//! `DIR` is the output of `fleet_soak --out DIR` (defaults to `.`): the
//! fleet's merged latency sketch book, one replayable archive per clean
//! shard, and any forced failure triple.
//!
//! * The percentile commands read the merged book and print the fleet's
//!   wall-clock quantile for a mechanism (`decide`, `decide_cached`,
//!   `channel_exchange`, `ledger_append`, `mm_fault`, `snapshot`, ...).
//! * `exemplar` resolves the exemplar riding the requested percentile
//!   bucket: it prints the `(shard seed, event index, span, ledger seq)`
//!   replay coordinate, then *re-executes* the owning shard up to that
//!   event and confirms the same span and ledger sequence reappear —
//!   turning a tail-latency number into a verified forensic artifact.
//!   Exits non-zero if the re-execution does not confirm.
//! * `ledger-diff` compares two shards' ledger digests and localizes
//!   any divergence (chain anchors, effect-class counts, control plane).
//! * `why` replays a failure triple from boot and from its snapshot and
//!   reports the reproduction verdict plus the sealed history digest.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use overhaul_fleet::{
    find_archive, load_archives, load_merged, replay_triple, replay_triple_from_snapshot,
    resolve_exemplar, FailureTriple,
};
use overhaul_sim::Mechanism;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ovq [--dir DIR] p50|p90|p99|p999 <mechanism>\n\
         \x20      ovq [--dir DIR] exemplar <mechanism> [--p 50|90|99|999]\n\
         \x20      ovq [--dir DIR] ledger-diff <shardA> <shardB>\n\
         \x20      ovq why --triple <path>"
    );
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("ovq: {msg}");
    ExitCode::from(2)
}

/// Strips `--flag value` out of the argument list, returning the value.
fn take_flag(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        return None;
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn parse_quantile(p: &str) -> Option<(&'static str, f64)> {
    match p {
        "50" => Some(("p50", 0.50)),
        "90" => Some(("p90", 0.90)),
        "99" => Some(("p99", 0.99)),
        "999" => Some(("p999", 0.999)),
        _ => None,
    }
}

fn parse_mechs(name: &str) -> Result<Vec<Mechanism>, String> {
    Mechanism::parse(name).ok_or_else(|| {
        let known: Vec<&str> = Mechanism::ALL.iter().map(Mechanism::label).collect();
        format!(
            "unknown mechanism {name:?} (try: decide, {})",
            known.join(", ")
        )
    })
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let dir = PathBuf::from(take_flag(&mut args, "--dir").unwrap_or_else(|| ".".into()));
    let percentile = take_flag(&mut args, "--p");
    let triple_path = take_flag(&mut args, "--triple");

    match args.first().map(String::as_str) {
        Some(q @ ("p50" | "p90" | "p99" | "p999")) => {
            let Some(mech) = args.get(1) else {
                return usage();
            };
            cmd_quantile(&dir, q, mech)
        }
        Some("exemplar") => {
            let Some(mech) = args.get(1) else {
                return usage();
            };
            cmd_exemplar(&dir, mech, percentile.as_deref().unwrap_or("99"))
        }
        Some("ledger-diff") => {
            let (Some(a), Some(b)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let (Ok(a), Ok(b)) = (a.parse::<usize>(), b.parse::<usize>()) else {
                return fail("ledger-diff takes two shard indices");
            };
            cmd_ledger_diff(&dir, a, b)
        }
        Some("why") => {
            let Some(path) = triple_path else {
                return usage();
            };
            cmd_why(Path::new(&path))
        }
        _ => usage(),
    }
}

fn cmd_quantile(dir: &Path, q: &str, mech: &str) -> ExitCode {
    let (label, quantile) = parse_quantile(&q[1..]).expect("matched above");
    let mechs = match parse_mechs(mech) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let merged = match load_merged(dir) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let sketch = merged.wall_merged(&mechs);
    if sketch.count() == 0 {
        return fail(&format!("no samples recorded for mechanism {mech:?}"));
    }
    println!(
        "{mech} {label} = {} ns ({} samples, max {} ns)",
        sketch.quantile(quantile),
        sketch.count(),
        sketch.max()
    );
    ExitCode::SUCCESS
}

fn cmd_exemplar(dir: &Path, mech: &str, p: &str) -> ExitCode {
    let Some((label, quantile)) = parse_quantile(p) else {
        return fail("--p takes 50, 90, 99, or 999");
    };
    let mechs = match parse_mechs(mech) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let merged = match load_merged(dir) {
        Ok(m) => m,
        Err(e) => return fail(&e),
    };
    let sketch = merged.wall_merged(&mechs);
    let Some(exemplar) = sketch.exemplar_at(quantile) else {
        return fail(&format!("no {label} exemplar recorded for {mech:?}"));
    };
    println!(
        "{mech} {label} exemplar: {} ns at shard seed {:#018x}, event {}, span {}, ledger seq {}",
        exemplar.value, exemplar.seed, exemplar.event_idx, exemplar.span, exemplar.ledger_seq
    );
    let archives = match load_archives(dir) {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let Some(archive) = find_archive(&archives, exemplar.seed) else {
        eprintln!(
            "ovq: no archive for shard seed {:#018x} (failed shard, or dir written without \
             archives)",
            exemplar.seed
        );
        return ExitCode::from(2);
    };
    match resolve_exemplar(archive, &mechs, &exemplar) {
        Ok(res) if res.confirmed => {
            println!(
                "confirmed: shard {} re-executed from {} reproduces span {} / ledger seq {} \
                 at event {}",
                res.shard_index,
                if res.from_snapshot {
                    "last-good snapshot"
                } else {
                    "boot"
                },
                exemplar.span,
                exemplar.ledger_seq,
                exemplar.event_idx
            );
            ExitCode::SUCCESS
        }
        Ok(res) => {
            eprintln!(
                "ovq: NOT confirmed — shard {} replayed event {} but watched {:?}, wanted \
                 (span {}, seq {})",
                res.shard_index,
                exemplar.event_idx,
                res.watched,
                exemplar.span,
                exemplar.ledger_seq
            );
            ExitCode::FAILURE
        }
        Err(e) => fail(&e),
    }
}

fn cmd_ledger_diff(dir: &Path, a: usize, b: usize) -> ExitCode {
    let archives = match load_archives(dir) {
        Ok(ar) => ar,
        Err(e) => return fail(&e),
    };
    let find = |idx: usize| archives.iter().find(|ar| ar.index == idx);
    let (Some(left), Some(right)) = (find(a), find(b)) else {
        return fail(&format!(
            "shard {a} or {b} has no archive in this dir (indices present: {:?})",
            archives.iter().map(|ar| ar.index).collect::<Vec<_>>()
        ));
    };
    println!("shard {a}: {}", left.ledger.render());
    println!("shard {b}: {}", right.ledger.render());
    let diff = left.ledger.diff(&right.ledger);
    if diff.is_empty() {
        println!("ledgers agree");
    } else {
        println!("divergence localized ({} fields):", diff.len());
        for line in diff {
            println!("  {line}");
        }
    }
    ExitCode::SUCCESS
}

fn cmd_why(path: &Path) -> ExitCode {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return fail(&format!("read {}: {e}", path.display())),
    };
    let triple = match FailureTriple::from_bytes(&bytes) {
        Ok(t) => t,
        Err(e) => return fail(&format!("parse {}: {e:?}", path.display())),
    };
    overhaul_fleet::quiet_injected_panics();
    println!(
        "shard {} seed {:#018x}: {:?}",
        triple.index, triple.seed, triple.kind
    );
    println!(
        "  {} recorded events, snapshot covers {}, sealed state hash {}, chain head {:016x}",
        triple.log.events.len(),
        triple.snap_idx,
        triple
            .sealed_hash()
            .map_or("<unsealed>".into(), |h| format!("{h:016x}")),
        triple.chain_head
    );
    if let Some(op) = &triple.failing_op {
        println!("  failing op: {op:?}");
    }
    let from_boot = replay_triple(&triple);
    let from_snap = replay_triple_from_snapshot(&triple);
    println!("  replay from boot:     {from_boot:?}");
    println!("  replay from snapshot: {from_snap:?}");
    if from_boot.is_reproduced() && from_snap == from_boot {
        println!("reproduced: the sealed log explains this failure byte-identically");
        ExitCode::SUCCESS
    } else {
        println!("NOT reproduced: the triple no longer explains the failure");
        ExitCode::FAILURE
    }
}
