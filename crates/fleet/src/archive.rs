//! Saved soak artifacts and exemplar-linked replay forensics.
//!
//! A soak run with `--out DIR` persists one [`ShardArchive`] per clean
//! shard plus the fleet's merged [`SketchBook`]. The archive pairs the
//! shard's recorded [`EventLog`] and last-good [`Snapshot`] with its
//! latency sketches and ledger digest, so any sketch [`Exemplar`] — a
//! `(shard seed, event index, span, ledger seq)` coordinate sampled from
//! a percentile bucket — can be *resolved*: the shard is re-executed up
//! to the exemplar's event (from boot, or the short way from the
//! snapshot), a watch is armed on the exemplar's mechanisms, and the
//! re-execution must reproduce the same `(span, ledger seq)` pair. That
//! turns a tail-latency data point into a replayable forensic artifact
//! rather than a number on a dashboard.

use std::fs;
use std::path::Path;

use overhaul_core::{apply_event, EventLog, System};
use overhaul_sim::{
    Dec, Enc, Exemplar, LedgerSummary, Mechanism, Pack, SketchBook, Snapshot, SnapshotError,
};

/// File name of the fleet's merged sketch book inside a soak output dir.
pub const MERGED_SKETCH_FILE: &str = "merged.sketch";

/// File name for one shard's archive inside a soak output dir.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index:05}.ov")
}

/// File name for one shard's failure triple inside a soak output dir.
pub fn triple_file_name(index: usize) -> String {
    format!("triple-{index:05}.ov")
}

/// One clean shard's replayable observability record: everything needed
/// to re-execute the shard and confirm any exemplar its sketches carry.
#[derive(Debug, Clone)]
pub struct ShardArchive {
    /// Shard index within the fleet.
    pub index: usize,
    /// The shard's decorrelated seed (exemplars are stamped with it).
    pub seed: u64,
    /// The shard machine's latency-sketch book at the end of the run.
    pub sketches: SketchBook,
    /// Digest of the shard's kernel ledger (for `ovq ledger-diff`).
    pub ledger: LedgerSummary,
    /// Every input the shard applied, hash-sealed.
    pub log: EventLog,
    /// Events already covered by `snapshot`.
    pub snap_idx: usize,
    /// The shard's last periodic checkpoint (after `snap_idx` events).
    pub snapshot: Snapshot,
}

impl ShardArchive {
    /// Serializes the archive (same versioned container as snapshots).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.index.pack(&mut enc);
        self.seed.pack(&mut enc);
        self.sketches.to_bytes().pack(&mut enc);
        self.ledger.pack(&mut enc);
        self.log.to_bytes().pack(&mut enc);
        self.snap_idx.pack(&mut enc);
        self.snapshot.to_bytes().pack(&mut enc);
        Snapshot::new(enc.into_bytes(), Vec::new()).to_bytes()
    }

    /// Parses an archive serialized by [`ShardArchive::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from a truncated or corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardArchive, SnapshotError> {
        let container = Snapshot::from_bytes(bytes)?;
        let mut dec = Dec::new(container.state());
        let index = Pack::unpack(&mut dec)?;
        let seed = Pack::unpack(&mut dec)?;
        let sketch_bytes: Vec<u8> = Pack::unpack(&mut dec)?;
        let ledger = Pack::unpack(&mut dec)?;
        let log_bytes: Vec<u8> = Pack::unpack(&mut dec)?;
        let snap_idx = Pack::unpack(&mut dec)?;
        let snap_bytes: Vec<u8> = Pack::unpack(&mut dec)?;
        dec.finish()?;
        Ok(ShardArchive {
            index,
            seed,
            sketches: SketchBook::from_bytes(&sketch_bytes)?,
            ledger,
            log: EventLog::from_bytes(&log_bytes)?,
            snap_idx,
            snapshot: Snapshot::from_bytes(&snap_bytes)?,
        })
    }
}

/// The verdict of re-executing an exemplar's coordinate.
#[derive(Debug, Clone)]
pub struct ExemplarResolution {
    /// Which shard the exemplar came from.
    pub shard_index: usize,
    /// Whether the re-execution took the short path from the shard's
    /// last-good snapshot (`false`: replayed from boot).
    pub from_snapshot: bool,
    /// Whether the re-execution reproduced the exemplar's exact
    /// `(span, ledger seq)` pair at its recorded event index.
    pub confirmed: bool,
    /// Every `(span, ledger seq)` the watched event actually produced
    /// for the exemplar's mechanisms (diagnostic on mismatch).
    pub watched: Vec<(u64, u64)>,
}

/// Finds the archive an exemplar points into, by shard seed.
pub fn find_archive(archives: &[ShardArchive], seed: u64) -> Option<&ShardArchive> {
    archives.iter().find(|a| a.seed == seed)
}

/// Re-executes `archive` up to `exemplar`'s event index and checks that
/// the watched mechanisms reproduce the exemplar's `(span, ledger seq)`
/// pair. Takes the short path from the archived snapshot when the
/// exemplar lies past it, otherwise replays from boot.
///
/// # Errors
///
/// A human-readable string when the exemplar predates the event stream
/// (boot-time observations cannot be re-armed), points past the log, or
/// the archived machine fails to boot/restore.
pub fn resolve_exemplar(
    archive: &ShardArchive,
    mechs: &[Mechanism],
    exemplar: &Exemplar,
) -> Result<ExemplarResolution, String> {
    let from_snapshot = exemplar.event_idx as usize > archive.snap_idx;
    resolve_exemplar_via(archive, mechs, exemplar, from_snapshot)
}

/// [`resolve_exemplar`] with the path forced: `from_snapshot` restores
/// the archived checkpoint first, otherwise the shard replays from boot.
/// Both paths must agree — the round-trip property test drives each.
///
/// # Errors
///
/// Same conditions as [`resolve_exemplar`], plus forcing the snapshot
/// path for an exemplar at or before `snap_idx` (already covered by the
/// checkpoint, so the watch could never arm).
pub fn resolve_exemplar_via(
    archive: &ShardArchive,
    mechs: &[Mechanism],
    exemplar: &Exemplar,
    from_snapshot: bool,
) -> Result<ExemplarResolution, String> {
    let target = exemplar.event_idx as usize;
    if target == 0 {
        return Err("exemplar predates the event stream (boot-time observation)".into());
    }
    if target > archive.log.events.len() {
        return Err(format!(
            "exemplar event index {target} past end of log ({} events)",
            archive.log.events.len()
        ));
    }
    let mut system = if from_snapshot {
        if target <= archive.snap_idx {
            return Err(format!(
                "exemplar event index {target} is inside the checkpoint (snap_idx {})",
                archive.snap_idx
            ));
        }
        System::from_snapshot(&archive.snapshot)
            .map_err(|e| format!("snapshot restore failed: {e:?}"))?
    } else {
        let system = System::try_new(archive.log.config.clone())
            .map_err(|e| format!("replay boot failed: {e:?}"))?;
        system.set_sketch_seed(archive.seed);
        system
    };
    system.sketch_watch(mechs.to_vec(), exemplar.event_idx);
    let start = if from_snapshot { archive.snap_idx } else { 0 };
    for event in &archive.log.events[start..target] {
        apply_event(&mut system, event);
    }
    let watched = system.sketch_watched();
    let confirmed = watched.contains(&(exemplar.span, exemplar.ledger_seq));
    Ok(ExemplarResolution {
        shard_index: archive.index,
        from_snapshot,
        confirmed,
        watched,
    })
}

/// Writes a soak output dir: the merged sketch book plus one archive
/// per clean shard.
///
/// # Errors
///
/// A human-readable string naming the path that failed to write.
pub fn write_soak_dir(
    dir: &Path,
    merged: &SketchBook,
    archives: &[ShardArchive],
) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let merged_path = dir.join(MERGED_SKETCH_FILE);
    fs::write(&merged_path, merged.to_bytes())
        .map_err(|e| format!("write {}: {e}", merged_path.display()))?;
    for archive in archives {
        let path = dir.join(shard_file_name(archive.index));
        fs::write(&path, archive.to_bytes())
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Loads the merged sketch book from a soak output dir.
///
/// # Errors
///
/// A human-readable string naming the file and the read/parse failure.
pub fn load_merged(dir: &Path) -> Result<SketchBook, String> {
    let path = dir.join(MERGED_SKETCH_FILE);
    let bytes = fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    SketchBook::from_bytes(&bytes).map_err(|e| format!("parse {}: {e:?}", path.display()))
}

/// Loads every shard archive from a soak output dir, sorted by index.
///
/// # Errors
///
/// A human-readable string naming the file and the read/parse failure.
pub fn load_archives(dir: &Path) -> Result<Vec<ShardArchive>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    let mut archives = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !(name.starts_with("shard-") && name.ends_with(".ov")) {
            continue;
        }
        let path = entry.path();
        let bytes = fs::read(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let archive = ShardArchive::from_bytes(&bytes)
            .map_err(|e| format!("parse {}: {e:?}", path.display()))?;
        archives.push(archive);
    }
    archives.sort_by_key(|a| a.index);
    Ok(archives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FleetWorkload, ShardPlan};
    use crate::shard::{run_shard, ShardBeat, ShardOutcome};
    use overhaul_sim::FLEET_QUANTILES;

    fn clean_archive(seed: u64) -> ShardArchive {
        let plan = ShardPlan::from_seed(seed, 0, &FleetWorkload::default());
        let report = run_shard(&plan, &ShardBeat::default());
        assert!(
            matches!(report.outcome, ShardOutcome::Ok { .. }),
            "seed {seed} must run clean: {:?}",
            report.outcome
        );
        ShardArchive {
            index: report.index,
            seed: report.seed,
            sketches: report.sketches,
            ledger: report.ledger,
            log: report.log.expect("clean shard keeps its log"),
            snap_idx: report.snap_idx,
            snapshot: report.snapshot.expect("clean shard keeps its snapshot"),
        }
    }

    #[test]
    fn archive_round_trips_through_bytes() {
        let archive = clean_archive(7);
        let decoded = ShardArchive::from_bytes(&archive.to_bytes()).expect("decode");
        assert_eq!(decoded.index, archive.index);
        assert_eq!(decoded.seed, archive.seed);
        assert_eq!(decoded.snap_idx, archive.snap_idx);
        assert_eq!(decoded.log.events, archive.log.events);
        assert_eq!(decoded.sketches.to_bytes(), archive.sketches.to_bytes());
        assert_eq!(decoded.ledger.head, archive.ledger.head);
        assert_eq!(decoded.snapshot.to_bytes(), archive.snapshot.to_bytes());
    }

    #[test]
    fn truncated_archive_errors_cleanly() {
        let bytes = clean_archive(7).to_bytes();
        assert!(ShardArchive::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn decide_exemplar_resolves_from_boot_and_snapshot() {
        let archive = clean_archive(7);
        let mechs = Mechanism::parse("decide").expect("decide parses");
        let sketch = archive.sketches.wall_merged(&mechs);
        assert!(sketch.count() > 0, "shard must sample decides");
        for (_, q) in FLEET_QUANTILES {
            let Some(exemplar) = sketch.exemplar_at(q) else {
                continue;
            };
            let boot = resolve_exemplar_via(&archive, &mechs, &exemplar, false).expect("boot path");
            assert!(
                boot.confirmed,
                "boot path must confirm span {} seq {} at event {} (watched {:?})",
                exemplar.span, exemplar.ledger_seq, exemplar.event_idx, boot.watched
            );
            if exemplar.event_idx as usize > archive.snap_idx {
                let snap =
                    resolve_exemplar_via(&archive, &mechs, &exemplar, true).expect("snap path");
                assert!(snap.confirmed, "snapshot path must agree with boot path");
            }
        }
    }

    #[test]
    fn out_of_range_exemplar_is_an_error_not_a_panic() {
        let archive = clean_archive(7);
        let mechs = Mechanism::parse("decide").expect("decide parses");
        let mut exemplar = archive
            .sketches
            .wall_merged(&mechs)
            .exemplar_at(0.99)
            .expect("exemplar");
        exemplar.event_idx = archive.log.events.len() as u64 + 1000;
        assert!(resolve_exemplar(&archive, &mechs, &exemplar).is_err());
        exemplar.event_idx = 0;
        assert!(resolve_exemplar(&archive, &mechs, &exemplar).is_err());
    }

    #[test]
    fn soak_dir_round_trips() {
        let archive = clean_archive(7);
        let merged = archive.sketches.clone();
        let dir = std::env::temp_dir().join(format!("ov-archive-test-{}", std::process::id()));
        write_soak_dir(&dir, &merged, std::slice::from_ref(&archive)).expect("write");
        let loaded = load_merged(&dir).expect("merged");
        assert_eq!(loaded.canonical_bytes(), merged.canonical_bytes());
        let archives = load_archives(&dir).expect("archives");
        assert_eq!(archives.len(), 1);
        assert_eq!(archives[0].seed, archive.seed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
