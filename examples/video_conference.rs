//! A Skype-like video-conferencing session (§V-B task 1 + §V-C's one
//! "spurious" alert).
//!
//! Shows: (a) the launch-time camera probe being blocked before any user
//! interaction — the applicability study's only unexpected alert, and a
//! desirable one; (b) a normal call working transparently after the user
//! clicks the call button.
//!
//! ```text
//! cargo run -p overhaul-apps --example video_conference
//! ```

use overhaul_core::System;
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = System::protected();
    let skype = machine.launch_gui_app("/usr/bin/skype", Rect::new(100, 100, 800, 600))?;

    // Skype probes the camera immediately at startup, before login.
    println!("skype starts and probes the camera before any interaction...");
    match machine.open_device(skype.pid, "/dev/video0") {
        Err(e) => println!("  probe blocked: {e}"),
        Ok(_) => unreachable!("launch probe must be blocked"),
    }
    println!(
        "  alert shown: {}",
        machine.alert_history().last().expect("alert").render()
    );

    // The window settles; the user starts a call.
    machine.settle();
    println!("\nuser clicks the call button");
    machine.click_window(skype.window);
    machine.advance(SimDuration::from_millis(400));

    let cam = machine.open_device(skype.pid, "/dev/video0")?;
    let mic = machine.open_device(skype.pid, "/dev/snd/mic0")?;
    println!("  camera + microphone granted (within δ of the click)");

    // Stream a few frames/samples.
    for _ in 0..3 {
        let frame = machine.kernel_mut().sys_read(skype.pid, cam, 64)?;
        let audio = machine.kernel_mut().sys_read(skype.pid, mic, 64)?;
        println!(
            "  streaming {} / {}",
            String::from_utf8_lossy(&frame),
            String::from_utf8_lossy(&audio)
        );
        machine.advance(SimDuration::from_millis(33));
    }

    // The call continues even after δ: mediation happens at open(2), like
    // the paper — once a device is legitimately opened, streaming is not
    // re-checked.
    machine.advance(SimDuration::from_secs(60));
    let frame = machine.kernel_mut().sys_read(skype.pid, cam, 64)?;
    println!(
        "\n60s into the call, streaming continues uninterrupted: {}",
        String::from_utf8_lossy(&frame)
    );

    println!("\nalerts shown this session:");
    for alert in machine.alert_history() {
        println!("  {}", alert.render());
    }
    Ok(())
}
