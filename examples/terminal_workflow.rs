//! CLI interactions (§IV-B): `xterm` → `bash` → `scrot` over a
//! pseudo-terminal.
//!
//! The shell never receives X input events — only bytes through the pty —
//! yet the screenshot tool it launches must be able to capture the screen
//! right after the user typed the command. Overhaul propagates the
//! terminal emulator's interaction timestamp through the pseudo-terminal
//! device driver.
//!
//! ```text
//! cargo run -p overhaul-apps --example terminal_workflow
//! ```

use overhaul_core::System;
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Reply, Request};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = System::protected();

    // Terminal emulator with a pty pair; bash on the slave side.
    let xterm = machine.launch_gui_app("/usr/bin/xterm", Rect::new(0, 0, 640, 400))?;
    let (master, slave) = machine.kernel_mut().sys_openpty(xterm.pid)?;
    let bash = machine.kernel_mut().sys_fork(xterm.pid)?;
    machine.kernel_mut().sys_execve(bash, "/bin/bash")?;
    machine.advance(SimDuration::from_secs(20)); // shell idles
    machine.settle();

    // A cron-ish job under the idle shell gets nothing.
    let stale = machine.kernel_mut().sys_spawn(bash, "/usr/bin/scrot")?;
    let stale_client = machine.connect_x(stale);
    match machine.x_request(stale_client, Request::GetImage { window: None }) {
        Err(e) => println!("scrot from an idle shell: {e}"),
        Ok(_) => unreachable!(),
    }

    // The user clicks into the terminal and types `scrot`.
    machine.click_window(xterm.window);
    machine
        .kernel_mut()
        .sys_write(xterm.pid, master, b"scrot\n")?;
    let line = machine.kernel_mut().sys_read(bash, slave, 64)?;
    println!("bash read from pty: {:?}", String::from_utf8_lossy(&line));

    // bash forks scrot, which captures the screen.
    let scrot = machine.kernel_mut().sys_spawn(bash, "/usr/bin/scrot")?;
    let scrot_client = machine.connect_x(scrot);
    match machine.x_request(scrot_client, Request::GetImage { window: None })? {
        Reply::Image(pixels) => println!("scrot captured the screen: {} pixels", pixels.len()),
        other => unreachable!("{other:?}"),
    }
    println!(
        "alert shown: {}",
        machine
            .alert_history()
            .last()
            .expect("screen alert")
            .render()
    );
    Ok(())
}
