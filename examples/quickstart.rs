//! Quickstart: the core Overhaul loop in one minute.
//!
//! Boots a protected machine, launches a recorder app, and shows the three
//! central behaviors: deny-by-default, grant-on-interaction (Figure 1),
//! and the trusted overlay alert.
//!
//! ```text
//! cargo run -p overhaul-apps --example quickstart
//! ```

use overhaul_core::System;
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine with the paper's configuration: δ = 2 s, shm wait 500 ms,
    // ptrace hardening on, mic + camera attached.
    let mut machine = System::protected();
    println!("booted Overhaul-protected machine (δ = 2s)");

    // Launch a GUI recorder and let its window become stable.
    let recorder = machine.launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 640, 480))?;
    machine.settle();
    println!("launched /usr/bin/recorder as {}", recorder.pid);

    // 1. Without user interaction, the microphone is off-limits.
    match machine.open_device(recorder.pid, "/dev/snd/mic0") {
        Err(e) => println!("no interaction yet  -> open(/dev/snd/mic0) = {e}"),
        Ok(_) => unreachable!("deny-by-default"),
    }

    // 2. The user clicks the record button; the app opens the mic within δ.
    machine.click_window(recorder.window);
    machine.advance(SimDuration::from_millis(300));
    let fd = machine.open_device(recorder.pid, "/dev/snd/mic0")?;
    let sample = machine.kernel_mut().sys_read(recorder.pid, fd, 64)?;
    println!(
        "after a real click -> open granted, read {:?}",
        String::from_utf8_lossy(&sample)
    );

    // 3. Every decision raised an unforgeable overlay alert.
    println!(
        "\ntrusted output path showed {} alerts:",
        machine.alert_history().len()
    );
    for alert in machine.alert_history() {
        println!("  {}", alert.render());
    }

    // 4. Wait past δ: the permission evaporates.
    machine.advance(SimDuration::from_secs(3));
    match machine.open_device(recorder.pid, "/dev/snd/mic0") {
        Err(e) => {
            println!("\n3s later          -> open(/dev/snd/mic0) = {e} (interaction expired)")
        }
        Ok(_) => unreachable!("temporal proximity enforced"),
    }

    Ok(())
}
