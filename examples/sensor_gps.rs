//! Arbitrary sensors (§III-C): Overhaul's device mediation is not limited
//! to cameras and microphones — any sensor node gets the same
//! input-driven protection. This example attaches a GPS receiver at
//! runtime (hot-plug through the udev path) and shows a location tracker
//! being blocked while a maps app the user actually clicked works.
//!
//! ```text
//! cargo run -p overhaul-apps --example sensor_gps
//! ```

use overhaul_core::System;
use overhaul_kernel::device::DeviceClass;
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = System::protected();

    // A USB GPS receiver is plugged in at runtime; udev creates the node
    // and the trusted helper registers it with the kernel map.
    machine
        .kernel_mut()
        .attach_device(DeviceClass::Sensor, "usb gps", "/dev/gps0");
    println!("hot-plugged /dev/gps0 (sensor class) — mediated from the first instant");

    // A stealthy location tracker polls the GPS in the background.
    let tracker = machine.spawn_process(None, "/usr/bin/.tracker")?;
    for attempt in 1..=3 {
        machine.advance(SimDuration::from_secs(60));
        match machine.open_device(tracker, "/dev/gps0") {
            Err(e) => println!("tracker poll #{attempt}: {e}"),
            Ok(_) => unreachable!("background polls must be blocked"),
        }
    }

    // The user opens a maps app and clicks "locate me".
    let maps = machine.launch_gui_app("/usr/bin/maps", Rect::new(0, 0, 800, 600))?;
    machine.settle();
    machine.click_window(maps.window);
    machine.advance(SimDuration::from_millis(150));
    let fd = machine.open_device(maps.pid, "/dev/gps0")?;
    let reading = machine.kernel_mut().sys_read(maps.pid, fd, 64)?;
    println!(
        "\nmaps clicked 'locate me' -> {}",
        String::from_utf8_lossy(&reading)
    );

    // The udev rename path: the receiver re-enumerates as /dev/gps1.
    machine
        .kernel_mut()
        .udev_rename_device("/dev/gps0", "/dev/gps1")?;
    println!("\nudev re-enumerated the receiver as /dev/gps1 (helper synced)");
    machine.advance(SimDuration::from_secs(5));
    match machine.open_device(tracker, "/dev/gps1") {
        Err(e) => println!("tracker poll at the new path: {e}"),
        Ok(_) => unreachable!("protection follows the rename"),
    }

    println!("\nalerts shown:");
    for alert in machine.alert_history() {
        println!("  {}", alert.render());
    }
    Ok(())
}
