//! Clipboard protection: a password manager vs. a clipboard sniffer.
//!
//! Runs the same scenario on a protected and an unprotected machine: the
//! user copies a master password from the password manager and pastes it
//! into the browser; a background sniffer repeatedly tries to paste the
//! clipboard for itself (and to bypass the protocol with a forged
//! `SelectionRequest`).
//!
//! ```text
//! cargo run -p overhaul-apps --example clipboard_protection
//! ```

use overhaul_apps::malware::{answer_selection_requests, selection_bypass_attack};
use overhaul_core::System;
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, Reply, Request, XEvent};

const SECRET: &[u8] = b"correct-horse-battery-staple";

fn scenario(mut machine: System, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {label} ===");
    let manager = machine.launch_gui_app("/usr/bin/keepassx", Rect::new(0, 0, 300, 200))?;
    let browser = machine.launch_gui_app("/usr/bin/firefox", Rect::new(400, 0, 600, 400))?;
    machine.settle();

    // The user copies the password (Ctrl-C after a click).
    machine.click_window(manager.window);
    machine
        .x_request(
            manager.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: manager.window,
            },
        )
        .map_err(|e| format!("copy failed: {e}"))?;
    println!("user copied the master password from keepassx");

    // ...and pastes it into the browser.
    machine.advance(SimDuration::from_millis(500));
    machine.click_window(browser.window);
    machine
        .x_request(
            browser.client,
            Request::ConvertSelection {
                selection: Atom::clipboard(),
                requestor: browser.window,
                property: Atom::new("XSEL_DATA"),
            },
        )
        .map_err(|e| format!("paste failed: {e}"))?;
    answer_selection_requests(&mut machine, manager.client, SECRET);
    let notify = machine
        .xserver_mut()
        .drain_events(browser.client)?
        .into_iter()
        .find_map(|e| match e {
            XEvent::SelectionNotify { property, .. } => Some(property),
            _ => None,
        });
    if let Some(property) = notify {
        if let Reply::Property(Some(data)) = machine.x_request(
            browser.client,
            Request::GetProperty {
                window: browser.window,
                property,
                delete: true,
            },
        )? {
            println!("browser pasted: {:?}", String::from_utf8_lossy(&data));
        }
    }

    // The user copies again (so the clipboard is "hot"), then the sniffer
    // strikes from the background.
    machine.click_window(manager.window);
    machine
        .x_request(
            manager.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: manager.window,
            },
        )
        .map_err(|e| format!("re-copy failed: {e}"))?;
    machine.advance(SimDuration::from_secs(30));

    let sniffer = machine.spawn_process(None, "/usr/bin/.sniffer")?;
    let sniffer_client = machine.connect_x(sniffer);
    let sniffer_window = match machine.x_request(
        sniffer_client,
        Request::CreateWindow {
            rect: Rect::new(0, 0, 1, 1),
        },
    )? {
        Reply::Window(w) => w,
        _ => unreachable!(),
    };

    // Attack 1: plain paste without user input.
    match machine.x_request(
        sniffer_client,
        Request::ConvertSelection {
            selection: Atom::clipboard(),
            requestor: sniffer_window,
            property: Atom::new("LOOT"),
        },
    ) {
        Ok(_) => {
            answer_selection_requests(&mut machine, manager.client, SECRET);
            match machine.x_request(
                sniffer_client,
                Request::GetProperty {
                    window: sniffer_window,
                    property: Atom::new("LOOT"),
                    delete: true,
                },
            )? {
                Reply::Property(Some(data)) => {
                    println!(
                        "sniffer paste attack: STOLE {:?}",
                        String::from_utf8_lossy(&data)
                    )
                }
                _ => println!("sniffer paste attack: got nothing"),
            }
        }
        Err(e) => println!("sniffer paste attack: blocked ({e})"),
    }

    // Attack 2: the forged-SelectionRequest protocol bypass.
    match selection_bypass_attack(
        &mut machine,
        sniffer,
        manager.client,
        manager.window,
        SECRET,
    ) {
        Some(data) => println!(
            "protocol bypass attack: STOLE {:?}",
            String::from_utf8_lossy(&data)
        ),
        None => println!("protocol bypass attack: blocked"),
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    scenario(System::protected(), "OVERHAUL-protected machine")?;
    scenario(System::baseline(), "unprotected machine")?;
    Ok(())
}
