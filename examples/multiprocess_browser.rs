//! Figure 4: a multi-process browser runs a web video-chat app.
//!
//! The user clicks the *main* browser window, but the *tab* process — which
//! has never received input and was forked long ago — is the one that opens
//! the camera, commanded over shared-memory IPC. Overhaul's P2 propagation
//! (page-fault interposition on the shared mapping) carries the interaction
//! timestamp across.
//!
//! ```text
//! cargo run -p overhaul-apps --example multiprocess_browser
//! ```

use overhaul_core::System;
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = System::protected();
    let browser = machine.launch_gui_app("/usr/bin/chromium", Rect::new(0, 0, 1024, 700))?;

    // Browser architecture: main process + tab process sharing memory.
    let kernel = machine.kernel_mut();
    let shm = kernel.sys_shmget(browser.pid, 0xbeef, 16)?;
    let main_vma = kernel.sys_shmat(browser.pid, shm)?;
    let tab = kernel.sys_fork(browser.pid)?;
    kernel.sys_execve(tab, "/usr/bin/chromium-tab")?;
    let tab_vma = kernel.sys_shmat(tab, shm)?;
    println!(
        "browser main = {}, tab = {tab}, shared segment mapped in both",
        browser.pid
    );

    // The tab idles long enough that anything inherited via fork expires.
    machine.advance(SimDuration::from_secs(30));
    machine.settle();

    // Without the user doing anything, the tab cannot touch the camera.
    match machine.open_device(tab, "/dev/video0") {
        Err(e) => println!("tab camera open before any click: {e}"),
        Ok(_) => unreachable!(),
    }

    // (1) The user clicks "Start video call" on the *main* window.
    machine.click_window(browser.window);
    println!("user clicked the main browser window");

    // (4) Main writes the command into shared memory; the write faults and
    // embeds the interaction timestamp into the segment.
    machine
        .kernel_mut()
        .sys_shm_write(browser.pid, main_vma, 0, b"start-video")?;
    // The tab reads the command; the read faults and adopts the timestamp.
    let cmd = machine.kernel_mut().sys_shm_read(tab, tab_vma, 0, 11)?;
    println!("tab received over shm: {:?}", String::from_utf8_lossy(&cmd));

    // (5) Now the tab's camera request correlates with the user's click.
    let fd = machine.open_device(tab, "/dev/video0")?;
    let frame = machine.kernel_mut().sys_read(tab, fd, 64)?;
    println!("tab opened the camera: {}", String::from_utf8_lossy(&frame));
    println!("\nkernel propagation events:");
    for event in machine
        .kernel_audit()
        .in_category(overhaul_sim::AuditCategory::InteractionPropagated)
    {
        println!("  {event}");
    }
    Ok(())
}
