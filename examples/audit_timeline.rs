//! Forensic timeline: replay a short session and print the merged
//! kernel + display-manager audit log, the way §V-C/§V-D investigations
//! read Overhaul's logs.
//!
//! ```text
//! cargo run -p overhaul-apps --example audit_timeline
//! ```

use overhaul_core::{timeline, System};
use overhaul_sim::SimDuration;
use overhaul_xserver::geometry::Rect;
use overhaul_xserver::protocol::{Atom, Request};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut machine = System::protected();

    // A short session: a recorder the user actually uses, plus a spy.
    let recorder = machine.launch_gui_app("/usr/bin/recorder", Rect::new(0, 0, 300, 200))?;
    machine.settle();
    machine.click_window(recorder.window);
    machine.advance(SimDuration::from_millis(120));
    let fd = machine.open_device(recorder.pid, "/dev/snd/mic0")?;
    machine.kernel_mut().sys_close(recorder.pid, fd)?;
    machine
        .x_request(
            recorder.client,
            Request::SetSelectionOwner {
                selection: Atom::clipboard(),
                window: recorder.window,
            },
        )
        .ok();

    machine.advance(SimDuration::from_secs(30));
    let spy = machine.spawn_process(None, "/usr/bin/.spy")?;
    let _ = machine.open_device(spy, "/dev/video0");
    let spy_client = machine.connect_x(spy);
    let _ = machine.x_request(spy_client, Request::GetImage { window: None });

    let entries = timeline::merge(&machine);
    println!("=== full merged timeline ({} events) ===", entries.len());
    println!("{}", timeline::render(&entries, None));

    println!("\n=== spy-only view ({}) ===", spy);
    println!("{}", timeline::render(&entries, Some(spy)));
    Ok(())
}
